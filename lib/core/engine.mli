(** The execution engine: binds the protocol stacks to the machine model.

    For a given configuration it (1) applies outlining / cloning /
    path-inlining to the stack's cost model and builds a concrete code
    image with the configured placement strategy, (2) installs a meter that
    turns every protocol action into an instruction/data trace positioned
    in that image, runs each event through the memory-hierarchy and CPU
    models {e online} (advancing the simulated clock, so protocol
    processing time shapes the end-to-end timeline exactly as slow code
    would on hardware), and (3) collects one steady-state roundtrip's trace
    for the offline Table 6 / Table 7 analysis.

    Interrupt dispatch and context switching are modeled as {e untraced}
    pseudo-functions: they cost time and occupy cache like the rest of the
    kernel but are excluded from the collected traces, as in §4.4. *)

module Layout = Protolat_layout
module Machine = Protolat_machine
module Obs = Protolat_obs

type stack_kind =
  | Tcpip
  | Rpc

val stack_name : stack_kind -> string

type run_result = {
  rtts : float list;  (** per measured roundtrip, µs *)
  trace : Machine.Trace.t;  (** one steady-state client roundtrip *)
  client_image : Layout.Image.t;
  steady : Machine.Perf.report;  (** warm replay: Table 7 quantities *)
  cold : Machine.Perf.report;  (** cold replay: Table 6 quantities *)
  static_path : int * int;  (** (with cold, hot-only) path instructions *)
  retransmissions : int;
  metrics : Obs.Metrics.t;
      (** the pair's unified metrics registry: device/protocol counters
          under [client.]/[server.]/[link.] scopes, fault counters when a
          plan was installed, and the [engine.rtt_us] histogram *)
  events : Obs.Tracer.t;
      (** timeline events ({!Obs.Tracer.null} unless [trace_events]) *)
  spans : Obs.Span.t;
      (** the per-message span ledger ({!Obs.Span.null} unless spans were
          enabled): every measured roundtrip's per-stage durations fold
          bit-exactly to its entry in [rtts] *)
  invariants : string list;
      (** {!Invariant.conservation} violations found in [metrics] at
          quiesce, rendered one per entry; empty for a sound run *)
}

val layout_for :
  Config.t -> stack_kind -> ?layout:Config.layout -> unit -> Layout.Image.t
(** Build the client code image alone (for layout experiments). *)

val client_units :
  Config.t -> stack_kind -> Layout.Image.unit_spec list * string list
(** The exact units the client image of this configuration is built from,
    plus the invocation order over unit names the placement strategies
    consume (chain members folded to their fused unit).  A layout
    optimizer re-places these units and scores the placements through the
    incremental path; any such placement corresponds to a real image of
    this configuration — {!layout_for} builds the named strategies from
    precisely these units. *)

(** Everything a measurement run needs, in one value.  Construct with
    {!Spec.make} (which carries the historical defaults) and pass to
    {!run} / {!sample}; every harness — {!Profile}, {!Timeline}, {!Soak},
    {!Mflow}, bench, the CLI — goes through this record, so a new run
    parameter is one field here instead of an optional argument on every
    entry point. *)
module Spec : sig
  type t = {
    stack : stack_kind;
    config : Config.t;
    topology : Protolat_netsim.Topology.t;
        (** wiring between the two endpoints (default {!Protolat_netsim.Topology.pair},
            the historic direct link — bit-identical to the pre-fabric
            engine).  [star]/[line] with 2 hosts route every frame through
            the store-and-forward switch, adding per-hop latency and
            switch-stage spans.  {!run} rejects topologies with more than
            2 hosts (use {!Incast} for N-host fabric scenarios). *)
    seed : int;  (** startup-allocation perturbation (default 42) *)
    rounds : int;  (** measured roundtrips (default 24) *)
    warmup : int;  (** discarded leading roundtrips (default 8) *)
    params : Machine.Params.t;
    layout : Config.layout option;
        (** [None]: the version's natural layout ({!Config.layout_of}) *)
    rx_overhead_us : float;
        (** packet-classifier cost ahead of every receive (TCP/IP only;
            the paper's PIN/ALL results assume a zero-overhead
            classifier; default 0) *)
    fault : Protolat_netsim.Fault.spec option;
        (** seeded wire + device fault plan, installed after the
            connection is established (widens the drive window so
            backed-off retransmissions still finish every roundtrip) *)
    extra_meter : Protolat_xkernel.Meter.t option;
        (** composed with the engine meter on both hosts — used by the
            soak harness to record cold-path coverage in metered runs *)
    trace_events : bool;
        (** record timeline events (packets, timers, faults,
            retransmissions) into [result.events] for Perfetto export *)
    spans : bool option;
        (** record the per-message span ledger into [result.spans];
            [None] (the default) follows the [PROTOLAT_SPANS] environment
            knob.  Marks never touch simulation state, so results are
            bit-identical either way *)
  }

  val make :
    ?topology:Protolat_netsim.Topology.t ->
    ?seed:int ->
    ?rounds:int ->
    ?warmup:int ->
    ?params:Machine.Params.t ->
    ?layout:Config.layout ->
    ?rx_overhead_us:float ->
    ?fault:Protolat_netsim.Fault.spec ->
    ?extra_meter:Protolat_xkernel.Meter.t ->
    ?trace_events:bool ->
    ?spans:bool ->
    stack:stack_kind ->
    config:Config.t ->
    unit ->
    t
  (** Smart constructor with the historical engine defaults
      (seed 42, 24 rounds, 8 warmup, default machine params). *)

  val default : stack:stack_kind -> config:Config.t -> t
  (** [make ~stack ~config ()] — all defaults. *)

  val with_seed : int -> t -> t
  (** [with_seed s spec] is [spec] reseeded — how {!sample} and the sweep
      harnesses derive per-sample specs from one base spec. *)
end

val run : Spec.t -> run_result
(** One measurement run: establish the connection, [spec.warmup]
    roundtrips, then [spec.rounds] measured roundtrips.

    The engine's online simulation uses the warm-block fast path (slots
    whose i-cache lines are verifiably resident are charged their memoized
    cost; see {!Machine.Blockcache}) unless it is disabled via
    [PROTOLAT_FASTPATH=0] or {!Machine.Blockcache.set_enabled} — results
    are bit-identical either way. *)

type throughput_result = {
  mbits_per_s : float;
  elapsed_us : float;
  client_cpu_pct : float;
  server_cpu_pct : float;
  segments : int;
}

val throughput :
  ?bytes:int ->
  ?params:Machine.Params.t ->
  ?topology:Protolat_netsim.Topology.t ->
  config:Config.t ->
  unit ->
  throughput_result
(** One-way bulk transfer over the TCP/IP stack: §4.1 verifies the
    techniques do not hurt throughput (the 10 Mb/s wire is the bottleneck)
    and §2.2.5 notes the §2.2 changes reduce CPU utilization. *)

type sample_set = {
  rtt : Protolat_util.Stats.summary;  (** over per-sample mean RTTs *)
  result : run_result;  (** the last sample's detailed result *)
}

val sample_seed : int -> int
(** Seed used for the [i]-th sample of a sample set (shared with
    {!Experiments.full_run}'s parallel fan-out so job counts do not change
    results). *)

val collect : run_result list -> sample_set
(** Aggregate per-seed runs (in sample order) into a sample set. *)

val sample : ?samples:int -> ?jobs:int -> Spec.t -> sample_set
(** The paper's protocol: several samples (10 for TCP/IP, 5 for RPC by
    default) of a long ping-pong run, each the base spec reseeded with
    {!sample_seed} (startup allocation state), reported as mean ± stddev.
    [jobs] (default 1) fans the independent seeded runs across that many
    domains; the aggregate is bit-identical at any job count. *)
