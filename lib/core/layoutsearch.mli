(** Attrib-guided automated code-layout search ([protolat search]).

    The paper hand-picks its cloning / micro-positioning layouts (§3.2);
    this module searches the layout space instead.  A candidate layout is
    a {e genome} — a unit order, a desired i-cache set offset per unit
    (or dense packing), and a clone-toggle per unit — decoded to a
    placement by {!Protolat_layout.Strategy.at_offsets} and scored
    through the incremental replay path: the base run's steady-state
    trace is retargeted to the candidate by pure address arithmetic
    against a per-clone-vector template image (no {!Protolat_layout.Image.build}
    per candidate), re-bound with {!Protolat_machine.Blockcache.rebind},
    and replayed against a reused scratch hierarchy
    ({!Protolat_machine.Perf.steady_scratch}) — bit-identical to a full
    simulation of the decoded image, at ≥1000 candidates/sec on one core.

    Moves are guided by the {!Protolat_obs.Attrib} i-cache conflict
    matrix ({!Protolat_obs.Attrib.top_conflicts}): swaps, set-offset
    shifts, pull-together and clone toggles target the hottest
    (victim, evictor) pairs rather than mutating blindly.  Two drivers
    run in sequence — greedy hill-climb, then seeded simulated annealing
    with restarts — with candidate batches fanned over
    {!Protolat_util.Dpool}; proposal generation and acceptance stay on
    the calling domain, so results are bit-identical at any [jobs].

    The named strategies (bipartite, micro, linear, link-order) are
    exactly representable as genomes and seed the search, so the best
    found placement is never worse than the paper's best hand-picked
    layout; the pessimal layout is scored for reference only. *)

type genome = {
  perm : int array;  (** position -> unit index, a permutation *)
  offs : int array;
      (** position -> desired i-cache set offset in blocks plus
          [sets * extra-periods-of-gap] ({!Protolat_layout.Strategy.at_offsets}
          encoding), [-1] dense *)
  cold : bool array;  (** unit index -> outlined cold blocks deferred *)
}

type point = {
  eval : int;  (** scorer evaluations consumed when the best improved *)
  us : float;  (** best steady time after that evaluation *)
}

type cell = {
  stack : Engine.stack_kind;
  icache_kb : int;
  evals : int;  (** scorer evaluations actually consumed *)
  eval_s : float;  (** wall seconds inside candidate evaluation *)
  named : (Config.layout * float) list;
      (** steady time of every named strategy, scored through the same
          incremental path *)
  seeded : Config.layout list;
      (** named strategies whose genome encodings decoded bit-identically
          to the engine-built image and therefore seeded the search *)
  best : genome;
  best_us : float;
  best_order : string list;  (** unit names in best-genome order *)
  greedy_us : float;  (** best after the greedy phase *)
  trajectory : point list;  (** improvement history, oldest first *)
}

val best_named : cell -> Config.layout * float
(** Best non-pessimal hand-picked layout of the cell. *)

type t = {
  cells : cell list;  (** stacks x geometries, in request order *)
  budget : int;
  seeds : int;
  jobs : int;
  wall_s : float;
}

val geometries : int list
(** The {!Ablation.layout_matrix} i-cache geometries, in KB: 4, 8, 16,
    32. *)

val candidates_per_sec : t -> float
(** Total evaluations over total in-evaluation wall time. *)

val run :
  ?budget:int ->
  ?seeds:int ->
  ?geometries:int list ->
  ?stacks:Engine.stack_kind list ->
  ?jobs:int ->
  unit ->
  t
(** Search every stack x geometry cell.  [budget] (default 600) bounds
    scorer evaluations per cell (seed scoring included); [seeds] (default
    2) is the number of annealing restarts; [jobs] fans candidate batches
    over that many domains — results are bit-identical at any value. *)

val digest : t -> string
(** Hex digest over every cell's deterministic content (genomes, scores,
    trajectories) — wall-clock fields excluded, so equal searches at
    different [jobs] or machine speeds digest equally. *)

val check : t -> (unit, string) result
(** Re-score each cell's best genome through the full simulation path —
    decode with {!Protolat_layout.Strategy.at_offsets}, build the image,
    retarget the base trace with {!Protolat_layout.Image.pc_map}, and
    measure with {!Protolat_machine.Perf.steady} from a fresh
    segmentation — and require bit-identical steady time, plus
    best-found <= best seeded named layout per cell. *)

val table : t -> Protolat_util.Table.t
(** One row per cell: best named layout vs best found, delta,
    evaluations and candidates/sec. *)

val render : t -> string
(** {!table}, rendered. *)

val to_json : t -> string
