module Obs = Protolat_obs

type violation = {
  name : string;
  at_us : float;
  detail : string;
}

type t = {
  mutable rev : violation list;  (* newest first *)
  seen : (string, unit) Hashtbl.t;
}

let create () = { rev = []; seen = Hashtbl.create 8 }

let ok t = t.rev = []

let report t ~at_us ~name ~detail =
  if not (Hashtbl.mem t.seen name) then begin
    Hashtbl.replace t.seen name ();
    t.rev <- { name; at_us; detail } :: t.rev
  end

let check t ~at_us ~name ~detail cond =
  if not cond then report t ~at_us ~name ~detail:(detail ())

let violations t = List.rev t.rev

let primary t =
  match List.rev t.rev with [] -> None | v :: _ -> Some v.name

let names t = List.map (fun v -> v.name) (violations t)

(* ---- conservation laws over a metrics dump ------------------------- *)

(* [scope_of "client.lance.frames_rx" "lance.frames_rx"] = ["client."];
   a name either IS the suffix (root scope) or ends with ["." ^ suffix] *)
let split_suffix name suffix =
  if String.equal name suffix then Some ""
  else begin
    let ln = String.length name and ls = String.length suffix in
    if
      ln > ls + 1
      && name.[ln - ls - 1] = '.'
      && String.equal (String.sub name (ln - ls) ls) suffix
    then Some (String.sub name 0 (ln - ls))
    else None
  end

let counters_with dump suffix =
  List.filter_map
    (fun (name, sample) ->
      match (split_suffix name suffix, sample) with
      | Some scope, Obs.Metrics.Counter n -> Some (scope, n)
      | _ -> None)
    dump

let sum_of dump suffix =
  List.fold_left (fun acc (_, n) -> acc + n) 0 (counters_with dump suffix)

let scoped_value dump ~scope suffix =
  match List.assoc_opt scope (counters_with dump suffix) with
  | Some n -> n
  | None -> 0

let conservation_dump t ~at_us dump =
  let sum = sum_of dump in
  let le name lhs_label lhs rhs_label rhs =
    check t ~at_us ~name
      ~detail:(fun () ->
        Printf.sprintf "%s = %d exceeds %s = %d" lhs_label lhs rhs_label rhs)
      (lhs <= rhs)
  in
  (* wire: a link never drops a frame it was not given *)
  le "conservation.link_drops" "frames_dropped" (sum "frames_dropped")
    "frames_sent" (sum "frames_sent");
  (* devices: every frame reaching a LANCE (DMAed or overrun) was first
     put on the wire, survived it, or is an injected duplicate; frames
     still propagating only make the left side smaller *)
  le "conservation.wire_rx" "lance rx + overruns"
    (sum "lance.frames_rx" + sum "lance.rx_missed")
    "sent - dropped + duplications"
    (sum "frames_sent" - sum "frames_dropped" + sum "fault.duplications");
  (* fault plans: per scope, a class fires at most once per frame drawn *)
  List.iter
    (fun (scope, frames) ->
      let part suffix =
        le
          (Printf.sprintf "conservation.fault_%s" suffix)
          (scope ^ "fault." ^ suffix)
          (scoped_value dump ~scope ("fault." ^ suffix))
          (scope ^ "fault.frames") frames
      in
      part "drops";
      part "corruptions";
      part "duplications";
      part "reorderings")
    (counters_with dump "fault.frames");
  (* TCP: fast retransmits are a subset of all retransmits *)
  List.iter
    (fun (scope, total) ->
      le "conservation.tcp_fast_rexmt"
        (scope ^ "tcp.fast_retransmits")
        (scoped_value dump ~scope "tcp.fast_retransmits")
        (scope ^ "tcp.retransmits")
        total)
    (counters_with dump "tcp.retransmits");
  (* switches: every frame leaving an egress port or dropped inside the
     fabric entered on an ingress port (flood copies add to the supply);
     frames still queued or in flight only make the left side smaller.
     Equality holds at quiesce. *)
  List.iter
    (fun (scope, frames_in) ->
      let v suffix = scoped_value dump ~scope suffix in
      le "conservation.switch_forward"
        (scope ^ "out + drops")
        (v "switch.frames_out" + v "switch.queue_drops"
        + v "switch.unknown_drops" + v "switch.partition_drops")
        (scope ^ "in + flood copies")
        (frames_in + v "switch.flood_copies"))
    (counters_with dump "switch.frames_in")

let conservation t ~at_us metrics =
  conservation_dump t ~at_us (Obs.Metrics.dump metrics)

let render_violation v =
  Printf.sprintf "%s @ %.0fus: %s" v.name v.at_us v.detail

let render t =
  match violations t with
  | [] -> "ok"
  | vs -> String.concat "\n" (List.map render_violation vs)
