(** N-client incast over the switched star fabric — the first scenario
    that exercises {!Protolat_netsim.Topology}/{!Protolat_netsim.Switch}
    beyond two hosts.

    [fan_in] TCP clients connect through a store-and-forward switch to one
    server, synchronize on a start barrier, then fire closed-loop
    request/response exchanges.  The server's single access link and the
    switch's bounded per-port egress queue are the shared bottleneck, so
    completion latency grows — and its tail stretches — with the fan-in
    degree, the classic incast signature.

    {2 Sharded execution}

    Hosts shard across domains: the {e hub} shard owns the switch and the
    server, up to 8 {e client} shards split the clients round-robin.  Each
    client's access segment is two half-links (client half on its shard,
    switch half on the hub) joined by the {!Protolat_netsim.Ether.Link}
    remote-sink/inject exchange.  Shards advance in lock-step epochs of at
    most [min-frame serialization + propagation] past the globally
    earliest pending event — no cross-shard frame can arrive sooner, so
    parking frames at the epoch barrier and injecting them in fixed shard
    order is both causally safe and deterministic.  The shard count
    depends only on the fan-in, never on [jobs]: cells — and their
    digests — are bit-identical whether epochs run serially or on a
    domain pool. *)

module Util = Protolat_util

type workload = {
  req_bytes : int;
  resp_bytes : int;
  requests_per_client : int;
  stagger_us : float;
      (** connect spacing (plus seeded jitter); the request burst itself
          is synchronized at a barrier past the last connect *)
  switch_latency_us : float;
  port_queue_frames : int;  (** switch egress queue bound, per port *)
  horizon_us : float;  (** give-up time for stuck cells *)
}

val default_workload : workload
(** 64 B requests, 512 B responses, 4 requests per client, 50 µs connect
    stagger, 5 µs switch latency, 32-frame port queues. *)

(** One fan-in × seed measurement. *)
type cell = {
  fan_in : int;
  seed : int;
  completed : int;  (** exchanges finished before the horizon *)
  total : int;  (** [fan_in × requests_per_client] *)
  lat : Util.Stats.Hist.digest;
      (** request-to-response completion latency over all exchanges,
          merged from per-client streaming histograms in client order *)
  retransmits : int;
  queue_drops : int;  (** switch egress-queue overflow drops *)
  queue_peak : int;
  epochs : int;  (** lock-step rounds the shard engine ran *)
  end_us : float;
  drained : bool;  (** every exchange completed *)
  violations : string list;
      (** {!Invariant.conservation_dump} findings over the merged
          per-shard registries at quiesce, rendered; empty when sound *)
  digest : string;
      (** MD5 over a canonical client-ordered rendering of the cell —
          equal across [jobs] values by construction *)
}

val run_cell :
  ?wl:workload -> ?jobs:int -> fan_in:int -> seed:int -> unit -> cell
(** Run one incast cell on a [star:(fan_in+1)] fabric.
    @raise Invalid_argument unless [1 <= fan_in <= 1024]. *)

type report = {
  fan_ins : int list;
  seeds : int;
  wl : workload;
  cells : cell list;  (** fan-in major, seed minor *)
}

val seed_for : int -> int -> int
(** [seed_for base i]: seed of the [i]-th repetition — a stream distinct
    from the engine's, the soak's and mflow's. *)

val sweep :
  ?wl:workload ->
  ?fan_ins:int list ->
  ?seeds:int ->
  ?jobs:int ->
  seed:int ->
  unit ->
  report
(** Latency-vs-fan-in sweep (defaults: fan-ins 2/4/8/16/32/64, 1 seed).
    Cells run sequentially — [jobs] parallelizes the shards {e within}
    each cell, which is where the hosts are. *)

val passed : report -> bool
(** Every cell drained and broke no conservation law. *)

val render : report -> string

val to_json : report -> string
(** Deterministic JSON document ([kind = "incast"], carries
    ["schema_version"] and the largest cell's ["topology"] stamp). *)
