module Util = Protolat_util
module Machine = Protolat_machine
module Layout = Protolat_layout
module Xk = Protolat_xkernel
module Ns = Protolat_netsim
module T = Protolat_tcpip
module R = Protolat_rpc
module Obs = Protolat_obs
module Instr = Machine.Instr
module Trace = Machine.Trace
module Func = Layout.Func
module Block = Layout.Block
module Image = Layout.Image
module Meter = Xk.Meter

type stack_kind =
  | Tcpip
  | Rpc

let stack_name = function Tcpip -> "TCP/IP" | Rpc -> "RPC"

(* ----- stack descriptors -------------------------------------------------- *)

type desc = {
  tag : string;  (** stable identity, used as part of the image-cache key *)
  funcs : T.Opts.t -> Func.t list;
  invocation_order : string list;
  chains : (string * string list) list;
  path_names : string list;
}

let tcpip_desc =
  { tag = "tcpip";
    funcs = T.Specs.all;
    invocation_order = T.Specs.invocation_order;
    chains =
      [ ("out_path", T.Specs.output_chain); ("in_path", T.Specs.input_chain) ];
    path_names = T.Specs.path_function_names }

let rpc_client_desc =
  { tag = "rpc_client";
    funcs = R.Specs.all;
    invocation_order = R.Specs.invocation_order;
    chains =
      [ ("call_path", R.Specs.call_chain); ("in_path", R.Specs.input_chain) ];
    path_names = R.Specs.path_function_names }

let rpc_server_desc =
  { rpc_client_desc with
    tag = "rpc_server";
    chains =
      [ ("srv_in_path", R.Specs.server_input_chain);
        ("srv_out_path", R.Specs.server_output_chain) ] }

(* ----- untraced kernel code (interrupt dispatch, context switch) --------- *)

let untraced_func ~name n =
  Func.make ~name ~cat:Func.Path
    [ Func.item
        (Block.make ~id:"body" ~kind:Block.Hot
           (Instr.vec ~alu:(n * 55 / 100) ~load:(n * 22 / 100)
              ~store:(n * 13 / 100) ~br_not_taken:(n * 5 / 100)
              ~br_taken:(n * 5 / 100) ())) ]

let untraced_funcs =
  [ untraced_func ~name:"intr_dispatch" 420;
    untraced_func ~name:"intr_tx" 140;
    (* full context switch + thread wakeup: save/restore register file,
       scheduler, stack attach — the reason the RPC stack's roundtrip is
       slower than TCP/IP's despite executing fewer instructions *)
    untraced_func ~name:"ctx_switch" 1150 ]

(* ----- image construction ------------------------------------------------- *)

let code_base = 0x10000

(* The units a stack version compiles to, and the invocation order over
   unit names the placement strategies consume.  Factored out of image
   construction so a layout optimizer can re-place the exact units the
   engine would build — any placement of these units scored through the
   incremental path corresponds to a real [Engine] configuration. *)
let units_for (config : Config.t) (desc : desc) =
  let funcs = desc.funcs config.Config.opts @ untraced_funcs in
  let outlined = Config.outlined config.Config.version in
  let inlined = Config.path_inlined config.Config.version in
  let specialize = Config.cloned config.Config.version in
  let chain_members =
    if inlined then List.concat_map snd desc.chains else []
  in
  let find name = List.find (fun f -> f.Func.name = name) funcs in
  (* hot-code density: without outlining ~21% of each fetched i-cache block
     is interleaved unlikely code; outlining compresses that to ~15%
     (Table 9) *)
  let dilution_pct =
    if inlined then 13 else if outlined then 17 else 30
  in
  let fused_units =
    if not inlined then []
    else
      List.map
        (fun (fname, members) ->
          Image.fused ~outlined:true ~specialize ~separate_cold:specialize
            ~dilution_pct ~name:fname
            (List.map find members))
        desc.chains
  in
  let single_units =
    funcs
    |> List.filter (fun f -> not (List.mem f.Func.name chain_members))
    |> List.map (fun f ->
           Image.single ~outlined
             ~specialize:(specialize && f.Func.cat = Func.Path)
             ~separate_cold:specialize ~dilution_pct
             ~intra_calls:desc.path_names f)
  in
  let units = fused_units @ single_units in
  (* strategy ordering: map chain members to their fused unit's name *)
  let order =
    desc.invocation_order
    |> List.filter_map (fun name ->
           match
             List.find_opt (fun (_, members) -> List.mem name members)
               (if inlined then desc.chains else [])
           with
           | Some (fname, members) ->
             if List.hd members = name then Some fname else None
           | None -> Some name)
  in
  (units, order)

let build_image_uncached (config : Config.t) (desc : desc)
    ~(layout : Config.layout) =
  let units, order = units_for config desc in
  let placement =
    match layout with
    | Config.Link_order ->
      (* uncontrolled: alphabetical object-file order *)
      let sorted =
        List.sort
          (fun a b -> compare (Image.unit_name a) (Image.unit_name b))
          units
      in
      Layout.Strategy.link_order ~base:code_base sorted
    | Config.Bipartite ->
      Layout.Strategy.bipartite ~base:code_base ~icache_bytes:8192 ~order
        units
    | Config.Pessimal ->
      Layout.Strategy.pessimal ~base:code_base ~icache_bytes:8192
        ~bcache_bytes:(2 * 1024 * 1024) units
    | Config.Micro ->
      Layout.Strategy.micro_position ~base:code_base ~icache_bytes:8192
        ~block_bytes:32 ~ref_seq:order units
    | Config.Linear ->
      Layout.Strategy.invocation_order ~base:code_base ~order units
  in
  Image.build placement

(* Images are immutable once built and depend only on (stack descriptor,
   version, §2.2 option set, placement strategy), so repeated samples of
   the same configuration — sequential or fanned across domains — share
   one build instead of re-laying-out an identical code image per run. *)
let image_cache :
    (string * Config.version * T.Opts.t * Config.layout, Image.t) Hashtbl.t =
  Hashtbl.create 32

let image_cache_mutex = Mutex.create ()

let build_image (config : Config.t) (desc : desc) ~(layout : Config.layout) =
  let key = (desc.tag, config.Config.version, config.Config.opts, layout) in
  Mutex.lock image_cache_mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock image_cache_mutex)
    (fun () ->
      match Hashtbl.find_opt image_cache key with
      | Some img -> img
      | None ->
        let img = build_image_uncached config desc ~layout in
        Hashtbl.add image_cache key img;
        img)

(* ----- per-host engine state ---------------------------------------------- *)

(* Reusable address queue: meter ranges expand into 8-byte-granular
   addresses in a per-host int-array cursor instead of fresh list cells on
   every block emission. *)
type queue = {
  mutable buf : int array;
  mutable len : int;
  mutable pos : int;
}

let queue_create () = { buf = Array.make 64 0; len = 0; pos = 0 }

let rec queue_push_ranges q = function
  | [] -> ()
  | (r : Meter.range) :: rest ->
    let n = max 1 ((r.Meter.len + 7) / 8) in
    for i = 0 to n - 1 do
      if q.len = Array.length q.buf then begin
        let b = Array.make (2 * q.len) 0 in
        Array.blit q.buf 0 b 0 q.len;
        q.buf <- b
      end;
      q.buf.(q.len) <- r.Meter.base + r.Meter.off + (8 * i);
      q.len <- q.len + 1
    done;
    queue_push_ranges q rest

let queue_fill q ranges =
  q.len <- 0;
  q.pos <- 0;
  queue_push_ranges q ranges

(* next queued address, or -1 when drained (addresses are non-negative) *)
let queue_pop q =
  if q.pos < q.len then begin
    let a = q.buf.(q.pos) in
    q.pos <- q.pos + 1;
    a
  end
  else -1

(* Per-slot memo for the warm-block fast path (see {!Machine.Blockcache} for
   the replay-side counterpart and the general equivalence argument).  A
   slot's instruction classes, penalties and i-cache lines never change, so
   the per-instruction float expression of [emit_one] is precomputed for
   the dominant case [lat = 0.0] (no memory stall):

     us0.(i) = (0.0 +. (0.0 +. pen_i)) /. clock     (second of a pair)
     us1.(i) = (0.0 +. (1.0 +. pen_i)) /. clock     (new issue slot)

   and for the stall case the addends [pens.(i) = 0.0 +. pen_i] and
   [sum1.(i) = 1.0 +. pen_i] keep the original operation order, so every
   emitted microsecond is bit-identical to the slow path's.

   The slot is further segmented into {e chunks} — maximal instruction
   ranges sharing one i-cache line (pcs increase within a slot, so each
   distinct line is exactly one chunk).  Chunks are the fast path's warmth
   granularity: one generation compare decides whether the chunk's fetches
   would all hit (nothing can evict the line mid-chunk: data references
   never touch the i-cache and every fetch in the chunk is to this line),
   in which case the hits are credited in one step and only data references
   enter the memory system.  A chunk whose line is not resident falls back
   to full per-instruction fetches — so one missing line costs one chunk,
   not the whole slot.  [gens] holds the per-chunk generation snapshot
   ([-1] = unverified), only ever taken while the line is resident; the
   memo table is private to one host state, whose memory system never
   changes, so snapshots cannot leak across caches. *)
type smemo = {
  m_codes : int array;
  m_pens : float array;
  m_sum1 : float array;
  m_us0 : float array;
  m_us1 : float array;
  m_chunks : int array;
      (* stride-3 chunk table, one cache touch per chunk on the hot loop:
         chunk c = instrs [chunks.(3c), chunks.(3c+3)) on i-cache line
         chunks.(3c+1) in set chunks.(3c+2); the trailing word chunks.(3k)
         holds the slot length so the range read needs no bounds test *)
  m_gens : int array;
}

type hstate = {
  params : Machine.Params.t;
  image : Image.t;
  memsys : Machine.Memsys.t;
  icache : Machine.Cache.t;
  fp : bool;  (* warm-block fast path enabled for this host *)
  memo : (int, smemo) Hashtbl.t;  (* keyed by slot base address *)
  mlat : float array;  (* Memsys.lat_cell memsys: per-instruction latency *)
  clock : float array;  (* Sim.clock_cell sim: simulated wall clock *)
  sim : Ns.Sim.t;
  trace : Trace.t;
  rq : queue;  (* pending read addresses for the block being emitted *)
  wq : queue;  (* pending write addresses *)
  mutable collecting : bool;
  mutable traced : bool;
  mutable pending : int;  (* dual-issue pairing state: Instr.code, -1 = none *)
  mutable pair_mod : int;
      (* (attempts * pair_success_pct) mod 100, maintained incrementally:
         the pairing test [attempts * pct mod 100 < pct] without the
         per-attempt integer division *)
  mutable depth : int;  (* call depth, for synthetic stack references *)
  stack_base : int;
  mutable synth : int;
  mutable touch : int;
  busy_us : float array;
      (* accumulated modeled CPU time; 1-element array because a mutable
         float field in this mixed record would box on every store, and we
         store once per modeled instruction *)
      (* rotating heap-touch cursor: models the allocator / mbuf / pcb /
         timer-wheel churn that gives protocol code its large per-packet
         data footprint *)
}

let touch_window = 12 * 1024

let synth_stack_addr h =
  h.synth <- h.synth + 1;
  if h.synth land 1 = 0 then
    h.stack_base - (h.depth * 128) - (h.synth mod 16 * 8)
  else begin
    h.touch <- (h.touch + 24) mod touch_window;
    h.stack_base + 8192 + h.touch
  end

(* ----- warm-block fast path ----------------------------------------------- *)

let code_load = Instr.code Instr.Load

let code_store = Instr.code Instr.Store

let code_mul = Instr.code Instr.Mul

let build_smemo (p : Machine.Params.t) ic (slot : Image.slot) =
  let instrs = slot.Image.instrs and pcs = slot.Image.pcs in
  let n = Array.length instrs in
  let clock = p.Machine.Params.clock_mhz in
  let m_codes = Array.map Instr.code instrs in
  let m_pens = Array.make n 0.0 in
  let m_sum1 = Array.make n 0.0 in
  let m_us0 = Array.make n 0.0 in
  let m_us1 = Array.make n 0.0 in
  for i = 0 to n - 1 do
    let pen =
      match instrs.(i) with
      | Instr.Br_taken -> p.Machine.Params.br_taken_penalty
      | Instr.Jsr ->
        p.Machine.Params.br_taken_penalty +. p.Machine.Params.call_penalty
      | Instr.Ret ->
        p.Machine.Params.br_taken_penalty +. p.Machine.Params.ret_penalty
      | Instr.Mul -> p.Machine.Params.mul_cycles
      | Instr.Load -> p.Machine.Params.load_use_penalty
      | Instr.Alu | Instr.Store | Instr.Br_not_taken | Instr.Nop -> 0.0
    in
    m_pens.(i) <- 0.0 +. pen;
    m_sum1.(i) <- 1.0 +. pen;
    m_us0.(i) <- (0.0 +. (0.0 +. pen)) /. clock;
    m_us1.(i) <- (0.0 +. (1.0 +. pen)) /. clock
  done;
  (* chunk = maximal instr range on one i-cache line; pcs increase within a
     slot, so lines are non-decreasing and each distinct line is one chunk *)
  let starts = ref [] and lines = ref [] in
  let nchunks = ref 0 in
  for i = 0 to n - 1 do
    let line = Machine.Cache.line_of ic pcs.(i) in
    match !lines with
    | l :: _ when l = line -> ()
    | _ ->
      starts := i :: !starts;
      lines := line :: !lines;
      incr nchunks
  done;
  let k = !nchunks in
  let m_chunks = Array.make ((3 * k) + 1) n in
  List.iteri (fun j s -> m_chunks.(3 * (k - 1 - j)) <- s) !starts;
  List.iteri
    (fun j l ->
      let c = k - 1 - j in
      m_chunks.((3 * c) + 1) <- l;
      m_chunks.((3 * c) + 2) <- Machine.Cache.set_of_line ic l)
    !lines;
  { m_codes; m_pens; m_sum1; m_us0; m_us1; m_chunks; m_gens = Array.make k (-1) }

let smemo_for h (slot : Image.slot) =
  match Hashtbl.find h.memo slot.Image.addr with
  | m -> m
  | exception Not_found ->
    let m = build_smemo h.params h.icache slot in
    Hashtbl.add h.memo slot.Image.addr m;
    m

(* Fast-path slot emission: the exact computation of [emit_one], chunk by
   chunk.  A warm chunk (line verified resident by generation compare, or
   by probe on mismatch) skips its instruction fetches — they would all hit,
   contributing zero stall and no state change beyond the hit counters,
   credited in one step — and only its data references enter the memory
   system.  A cold chunk performs full per-instruction accesses and then
   snapshots its generation (the line was just fetched and nothing in the
   chunk can evict it).  Pairing state, synthetic-address state and the
   sequential busy/clock accumulation are bit-for-bit the slow path's. *)
let emit_slot_fast h (m : smemo) (slot : Image.slot) =
  let p = h.params in
  let clock = p.Machine.Params.clock_mhz in
  let pct = p.Machine.Params.pair_success_pct in
  let codes = m.m_codes in
  let pcs = slot.Image.pcs in
  let ic = h.icache in
  let igens = Machine.Cache.generations ic in
  let mlat = h.mlat in
  let chunks = m.m_chunks in
  let nchunks = Array.length m.m_gens in
  for c = 0 to nchunks - 1 do
    let b = 3 * c in
    let lo = Array.unsafe_get chunks b in
    let hi = Array.unsafe_get chunks (b + 3) - 1 in
    let warm =
      let g = Array.unsafe_get igens (Array.unsafe_get chunks (b + 2)) in
      Array.unsafe_get m.m_gens c = g
      || Machine.Cache.resident_line ic (Array.unsafe_get chunks (b + 1))
         && begin
              Array.unsafe_set m.m_gens c g;
              true
            end
    in
    (* [fetch_i]: the single instruction of the chunk that performs a real
       fetch (the miss), or -1 when the line is already resident.  Every
       other fetch in the chunk is a guaranteed hit — the miss at [lo]
       fills this very line and nothing in the chunk can evict it. *)
    let fetch_i = if warm then -1 else lo in
    for i = lo to hi do
      let code = Array.unsafe_get codes i in
      let lat =
        if i <> fetch_i then
          if code = code_load then begin
            let a = queue_pop h.rq in
            Machine.Memsys.daccess_acc h.memsys ~kind:Trace.kind_read
              ~addr:(if a >= 0 then a else synth_stack_addr h);
            mlat.(0)
          end
          else if code = code_store then begin
            let a = queue_pop h.wq in
            Machine.Memsys.daccess_acc h.memsys ~kind:Trace.kind_write
              ~addr:(if a >= 0 then a else synth_stack_addr h);
            mlat.(0)
          end
          else 0.0
        else begin
          (if code = code_load then
             let a = queue_pop h.rq in
             Machine.Memsys.access_acc h.memsys
               ~pc:(Array.unsafe_get pcs i)
               ~kind:Trace.kind_read
               ~addr:(if a >= 0 then a else synth_stack_addr h)
           else if code = code_store then
             let a = queue_pop h.wq in
             Machine.Memsys.access_acc h.memsys
               ~pc:(Array.unsafe_get pcs i)
               ~kind:Trace.kind_write
               ~addr:(if a >= 0 then a else synth_stack_addr h)
           else
             Machine.Memsys.access_acc h.memsys
               ~pc:(Array.unsafe_get pcs i)
               ~kind:Trace.kind_none ~addr:0);
          mlat.(0)
        end
      in
      let us =
        if h.pending < 0 then begin
          h.pending <- code;
          if lat = 0.0 then Array.unsafe_get m.m_us0 i
          else (lat +. Array.unsafe_get m.m_pens i) /. clock
        end
        else begin
          let prev = h.pending in
          let paired =
            prev <> code_mul && code <> code_mul
            && (prev = code_load || prev = code_store)
               <> (code = code_load || code = code_store)
            && begin
                 let r = h.pair_mod + pct in
                 let r = if r >= 100 then r - 100 else r in
                 h.pair_mod <- r;
                 r < pct
               end
          in
          if paired then h.pending <- -1 else h.pending <- code;
          if lat = 0.0 then Array.unsafe_get m.m_us1 i
          else (lat +. Array.unsafe_get m.m_sum1 i) /. clock
        end
      in
      h.busy_us.(0) <- h.busy_us.(0) +. us;
      h.clock.(0) <- h.clock.(0) +. us
    done;
    (* hit credit for every skipped fetch; after the miss at [lo], so the
       i-cache's last_victim ends as the slow path leaves it (the victim if
       the chunk is a lone miss, -1 whenever hits follow) *)
    Machine.Cache.credit_hits ic (if warm then hi - lo + 1 else hi - lo);
    if not warm then
      Array.unsafe_set m.m_gens c
        (Array.unsafe_get igens (Array.unsafe_get chunks (b + 2)))
  done

(* The per-instruction hot path: no boxed events, options, tuples or list
   cells — access kind/address travel as immediate ints straight into the
   memory system and the packed trace.  The whole computation lives in one
   function body and exchanges floats with Memsys and the clock through
   preallocated cells: a float argument or computed return at a call
   boundary is boxed by the compiler, and at one instruction per call that
   boxing dominated the simulator's allocation profile. *)
let emit_one h ~pc ~cls ~kind ~addr ~fid =
  Machine.Memsys.access_acc h.memsys ~pc ~kind ~addr;
  let p = h.params in
  let issue =
    if h.pending < 0 then begin
      h.pending <- Instr.code cls;
      0.0
    end
    else begin
      let prev = Instr.of_code h.pending in
      let paired =
        Machine.Cpu.can_pair prev cls
        && begin
             let pct = p.Machine.Params.pair_success_pct in
             let r = h.pair_mod + pct in
             let r = if r >= 100 then r - 100 else r in
             h.pair_mod <- r;
             r < pct
           end
      in
      if paired then h.pending <- -1 else h.pending <- Instr.code cls;
      1.0
    end
  in
  let pen =
    match cls with
    | Instr.Br_taken -> p.Machine.Params.br_taken_penalty
    | Instr.Jsr ->
      p.Machine.Params.br_taken_penalty +. p.Machine.Params.call_penalty
    | Instr.Ret ->
      p.Machine.Params.br_taken_penalty +. p.Machine.Params.ret_penalty
    | Instr.Mul -> p.Machine.Params.mul_cycles
    | Instr.Load -> p.Machine.Params.load_use_penalty
    | Instr.Alu | Instr.Store | Instr.Br_not_taken | Instr.Nop -> 0.0
  in
  let us = (h.mlat.(0) +. (issue +. pen)) /. p.Machine.Params.clock_mhz in
  h.busy_us.(0) <- h.busy_us.(0) +. us;
  h.clock.(0) <- h.clock.(0) +. us;
  if h.collecting && h.traced then
    Trace.add_packed h.trace ~pc ~cls ~kind ~addr ~fid

let emit_slot_slow h (slot : Image.slot) (override : Instr.cls option) =
  let instrs = slot.Image.instrs and pcs = slot.Image.pcs in
  (* tag collected events with their originating function; one intern-table
     lookup per block, not per instruction *)
  let fid =
    if h.collecting && h.traced then Trace.intern h.trace slot.Image.func
    else -1
  in
  for i = 0 to Array.length instrs - 1 do
    let cls =
      match override with Some c when i = 0 -> c | _ -> instrs.(i)
    in
    let pc = pcs.(i) in
    match cls with
    | Instr.Load ->
      let a = queue_pop h.rq in
      emit_one h ~pc ~cls ~kind:Trace.kind_read
        ~addr:(if a >= 0 then a else synth_stack_addr h)
        ~fid
    | Instr.Store ->
      let a = queue_pop h.wq in
      emit_one h ~pc ~cls ~kind:Trace.kind_write
        ~addr:(if a >= 0 then a else synth_stack_addr h)
        ~fid
    | _ -> emit_one h ~pc ~cls ~kind:Trace.kind_none ~addr:0 ~fid
  done

let emit_instrs h ?(reads = []) ?(writes = []) (slot : Image.slot)
    ?(override : Instr.cls option) () =
  queue_fill h.rq reads;
  queue_fill h.wq writes;
  (* the fast path cannot take overridden guards (the first class differs
     from the memoized one) or trace-collecting emissions (events must be
     appended per instruction) — both are rare *)
  if h.fp && override = None && not (h.collecting && h.traced) then
    emit_slot_fast h (smemo_for h slot) slot
  else emit_slot_slow h slot override

let fail_unknown func key =
  failwith (Printf.sprintf "Engine: no slot for %s/%s in this image" func key)

let emit_key h ?reads ?writes ~func ~key () =
  match Image.find h.image ~func ~key with
  | Image.Slot slot -> emit_instrs h ?reads ?writes slot ()
  | Image.Elided -> ()
  | Image.Unknown -> fail_unknown func key

(* Block/guard/cold/stub key strings repeat for the same few dozen block
   ids thousands of times per run; memoizing them per meter keeps string
   building off the per-block hot path.  The tables live in the meter's
   closure, so they are private to one host of one run — no cross-domain
   sharing. *)
let memo_key tbl build id =
  match Hashtbl.find tbl id with
  | s -> s
  | exception Not_found ->
    let s = build id in
    Hashtbl.add tbl id s;
    s

(* the meter for one host *)
let make_meter h =
  let khot = Hashtbl.create 64 in
  let kguard = Hashtbl.create 64 in
  let kcold = Hashtbl.create 64 in
  let kstub : (string, (int, string) Hashtbl.t) Hashtbl.t =
    Hashtbl.create 16
  in
  { Meter.enter =
      (fun f ->
        h.depth <- h.depth + 1;
        emit_key h ~func:f ~key:Image.Key.pro
          ~writes:[ Meter.range ~base:(h.stack_base - (h.depth * 96)) ~len:24 () ]
          ());
    leave =
      (fun f ->
        emit_key h ~func:f ~key:Image.Key.epi
          ~reads:[ Meter.range ~base:(h.stack_base - (h.depth * 96)) ~len:24 () ]
          ();
        h.depth <- max 0 (h.depth - 1));
    block =
      (fun ?reads ?writes f b ->
        emit_key h ?reads ?writes ~func:f ~key:(memo_key khot Image.Key.hot b)
          ());
    cold =
      (fun ?reads ?writes ~triggered f b ->
        match
          Image.find h.image ~func:f ~key:(memo_key kguard Image.Key.guard b)
        with
        | Image.Elided -> () (* whole block elided *)
        | Image.Unknown -> fail_unknown f (Image.Key.guard b)
        | Image.Slot guard ->
          let outl = guard.Image.cold_outlined in
          let guard_cls =
            match (outl, triggered) with
            | true, false -> Instr.Br_not_taken
            | true, true -> Instr.Br_taken
            | false, false -> Instr.Br_taken
            | false, true -> Instr.Br_not_taken
          in
          emit_instrs h guard ~override:guard_cls ();
          if triggered then
            emit_key h ?reads ?writes ~func:f
              ~key:(memo_key kcold Image.Key.cold b) ());
    call =
      (fun f b i ->
        let inner = memo_key kstub (fun _ -> Hashtbl.create 8) b in
        let key =
          match Hashtbl.find inner i with
          | s -> s
          | exception Not_found ->
            let s = Image.Key.stub b i in
            Hashtbl.add inner i s;
            s
        in
        emit_key h ~func:f ~key ()) }

let key_hot_body = Image.Key.hot "body"

let emit_untraced h name =
  let was = h.traced in
  h.traced <- false;
  emit_key h ~func:name ~key:Image.Key.pro ();
  emit_key h ~func:name ~key:key_hot_body ();
  emit_key h ~func:name ~key:Image.Key.epi ();
  h.traced <- was

(* phase hook: untraced interrupt entry, then the work, then drain any
   unblocked continuations with an untraced context switch each.
   [rx_overhead_us] models a packet classifier in front of the inlined
   path (§3.3: 1-4 us per packet on the paper's hardware). *)
let install_phase_hook ?(rx_overhead_us = 0.0) h (env : Ns.Host_env.t) =
  env.Ns.Host_env.run_phase <-
    (fun name work ->
      (match name with
      | "rx_intr" ->
        emit_untraced h "intr_dispatch";
        if rx_overhead_us > 0.0 then begin
          h.busy_us.(0) <- h.busy_us.(0) +. rx_overhead_us;
          Ns.Sim.advance_clock h.sim rx_overhead_us
        end
      | "tx_intr" -> emit_untraced h "intr_tx"
      | _ -> ());
      work ();
      let sched = env.Ns.Host_env.sched in
      while Xk.Thread.pending sched > 0 do
        emit_untraced h "ctx_switch";
        ignore (Xk.Thread.run sched)
      done)

(* ----- runs ---------------------------------------------------------------- *)

type run_result = {
  rtts : float list;
  trace : Trace.t;
  client_image : Image.t;
  steady : Machine.Perf.report;
  cold : Machine.Perf.report;
  static_path : int * int;
  retransmissions : int;
  metrics : Obs.Metrics.t;
  events : Obs.Tracer.t;
  spans : Obs.Span.t;
  invariants : string list;
}

let layout_for config stack ?layout () =
  let layout =
    match layout with
    | Some l -> l
    | None -> Config.layout_of config.Config.version
  in
  let desc = match stack with Tcpip -> tcpip_desc | Rpc -> rpc_client_desc in
  build_image config desc ~layout

let client_units config stack =
  let desc = match stack with Tcpip -> tcpip_desc | Rpc -> rpc_client_desc in
  units_for config desc

let make_hstate ~params ~image ~sim ~simmem =
  (* one region: [stack (8KB, grows down) | heap-touch window] *)
  let region = Xk.Simmem.alloc simmem (8192 + 8192 + touch_window) in
  let stack_base = region + 8192 in
  let memsys = Machine.Memsys.create params in
  { params;
    image;
    memsys;
    icache = Machine.Memsys.icache memsys;
    fp = Machine.Blockcache.enabled ();
    memo = Hashtbl.create 256;
    mlat = Machine.Memsys.lat_cell memsys;
    clock = Ns.Sim.clock_cell sim;
    sim;
    trace = Trace.create ();
    rq = queue_create ();
    wq = queue_create ();
    collecting = false;
    traced = true;
    pending = -1;
    pair_mod = 0;
    depth = 0;
    stack_base;
    synth = 0;
    touch = 0;
    busy_us = [| 0.0 |] }

let static_path_of (config : Config.t) desc =
  let funcs = desc.funcs config.Config.opts in
  Layout.Layout_stats.static_path_instrs funcs

(* Drive a prepared pair of hosts: [start] kicks the client, [completed]
   reads its roundtrip count, [on_roundtrip] installs the callback. *)
let drive ~sim ~(ch : hstate) ?(window_us = 5.0e6) ?(span = Obs.Span.null)
    ~start ~on_roundtrip ~completed ~rounds ~warmup () =
  let total = rounds + warmup in
  let rtts = ref [] in
  let last = ref 0.0 in
  (* the ledger's message windows share the RTT measurement's operands: the
     first opens at the same 0.0 [last] starts from, and every roll passes
     the exact [now] subtracted below — that identity is what makes the
     per-stage sums conserve bit-exactly *)
  Obs.Span.begin_run span ~at:0.0;
  on_roundtrip (fun i ->
      let now = Ns.Sim.now sim in
      if i > warmup then rtts := (now -. !last) :: !rtts;
      Obs.Span.roll span ~at:now ~measured:(i > warmup);
      last := now;
      (* collect exactly one steady-state roundtrip's trace *)
      ch.collecting <- i = warmup);
  start ();
  ignore (Ns.Sim.run ~until:(Ns.Sim.now sim +. window_us) sim);
  if completed () < total then
    failwith
      (Printf.sprintf "Engine.drive: only %d of %d roundtrips completed"
         (completed ()) total);
  List.rev !rtts

let perturb simmem seed =
  Xk.Simmem.bump simmem (seed * 1864 mod 16384 / 8 * 8)

let finish ~params ~config ~desc ~(ch : hstate) ~rtts ~retransmissions
    ~metrics ~events ~spans =
  (* the roundtrip latency histogram rides in the same registry as the
     device/protocol counters, so one dump covers the whole run *)
  let h = Obs.Metrics.histogram metrics ~help:"roundtrip latency" "engine.rtt_us" in
  List.iter (Obs.Metrics.observe h) rtts;
  let cold, steady = Machine.Perf.cold_and_steady params ch.trace in
  (* quiesce-time audit: the run's counters must satisfy the metrics
     conservation laws, whatever faults were injected *)
  let iv = Invariant.create () in
  Invariant.conservation iv ~at_us:(Ns.Sim.now ch.sim) metrics;
  { rtts;
    trace = ch.trace;
    client_image = ch.image;
    steady;
    cold;
    static_path = static_path_of config desc;
    retransmissions;
    metrics;
    events;
    spans;
    invariants = List.map Invariant.render_violation (Invariant.violations iv) }

(* seeded fault plans for one run: one wire plan per segment, one device
   plan per host's LANCE (independent split streams per class inside each).
   On the pair fabric the single segment keeps its historic "wire" scope
   and seed; switched fabrics get per-segment scopes/seeds. *)
let install_fault ~seed ~metrics spec ~fabric ~client_lance ~server_lance =
  let scoped name = Obs.Metrics.scoped metrics name in
  if Ns.Fabric.is_pair fabric then
    Ns.Ether.Link.set_fault
      (Ns.Fabric.pair_link fabric)
      (Some (Ns.Fault.create ~seed ~metrics:(scoped "wire") spec))
  else begin
    let i = ref 0 in
    Ns.Fabric.iter_links fabric (fun link ->
        Ns.Ether.Link.set_fault link
          (Some
             (Ns.Fault.create ~seed:(seed + (31 * !i))
                ~metrics:(scoped (Printf.sprintf "wire%d" !i))
                spec));
        incr i)
  end;
  Ns.Lance.set_fault client_lance
    (Some (Ns.Fault.create ~seed:(seed + 101) ~metrics:(scoped "client_dev") spec));
  Ns.Lance.set_fault server_lance
    (Some (Ns.Fault.create ~seed:(seed + 211) ~metrics:(scoped "server_dev") spec))

(* tracer shared by the whole pair: client events on tid 0, server on
   tid 1, the wire itself on tid 2 *)
let tid_client = 0

let tid_server = 1

let tid_wire = 2

let make_tracer ~trace_events sim =
  if trace_events then Obs.Tracer.create ~clock:(Ns.Sim.clock_cell sim) ()
  else Obs.Tracer.null

(* span ledger shared by the whole pair: client marks carry host 0, server
   host 1, the wire host 2 (same codes as the tracer tids) *)
let make_span ~spans sim =
  if spans then Obs.Span.create ~clock:(Ns.Sim.clock_cell sim) ()
  else Obs.Span.null

let install_span span ~cenv ~senv ~fabric ~client_lance ~server_lance =
  if Obs.Span.enabled span then begin
    Ns.Host_env.set_span cenv ~host:Obs.Span.host_client span;
    Ns.Host_env.set_span senv ~host:Obs.Span.host_server span;
    (* host i's span code is i (client 0, server 1); switch-side stations
       carry host_wire so multi-hop paths telescope into wire/switch/wire *)
    Ns.Fabric.set_span fabric span ~code_of:(fun i -> i);
    Ns.Lance.set_span ~host:Obs.Span.host_client client_lance span;
    Ns.Lance.set_span ~host:Obs.Span.host_server server_lance span
  end

let install_tracer tracer ~cenv ~senv ~fabric ~client_lance ~server_lance =
  if Obs.Tracer.enabled tracer then begin
    Ns.Host_env.set_tracer cenv ~tid:tid_client tracer;
    Ns.Host_env.set_tracer senv ~tid:tid_server tracer;
    Ns.Fabric.set_tracer fabric ~tid:tid_wire tracer;
    Ns.Lance.set_tracer client_lance ~tid:tid_client tracer;
    Ns.Lance.set_tracer server_lance ~tid:tid_server tracer
  end

let compose_meter base = function
  | None -> base
  | Some extra -> Xk.Meter.both base extra

let run_tcpip ?(rx_overhead_us = 0.0) ?fault ?extra_meter ?(trace_events = false)
    ?(spans = false) ~topology ~seed ~rounds ~warmup ~params
    ~(config : Config.t) ~layout () =
  let client_image = build_image config tcpip_desc ~layout in
  let server_image = client_image in
  let net =
    T.Stack.make_net ~opts_for:(fun _ -> config.Config.opts) ~topology ()
  in
  let pair = T.Stack.pair_of_net net in
  let fabric = net.T.Stack.fabric in
  let cenv = pair.T.Stack.client.T.Stack.env in
  let senv = pair.T.Stack.server.T.Stack.env in
  let tracer = make_tracer ~trace_events pair.T.Stack.sim in
  install_tracer tracer ~cenv ~senv ~fabric
    ~client_lance:pair.T.Stack.client.T.Stack.lance
    ~server_lance:pair.T.Stack.server.T.Stack.lance;
  let span = make_span ~spans pair.T.Stack.sim in
  install_span span ~cenv ~senv ~fabric
    ~client_lance:pair.T.Stack.client.T.Stack.lance
    ~server_lance:pair.T.Stack.server.T.Stack.lance;
  perturb cenv.Ns.Host_env.simmem seed;
  perturb senv.Ns.Host_env.simmem (seed + 17);
  let ch =
    make_hstate ~params ~image:client_image ~sim:pair.T.Stack.sim
      ~simmem:cenv.Ns.Host_env.simmem
  in
  let sh =
    make_hstate ~params ~image:server_image ~sim:pair.T.Stack.sim
      ~simmem:senv.Ns.Host_env.simmem
  in
  cenv.Ns.Host_env.meter <- compose_meter (make_meter ch) extra_meter;
  senv.Ns.Host_env.meter <- compose_meter (make_meter sh) extra_meter;
  install_phase_hook ~rx_overhead_us ch cenv;
  install_phase_hook ~rx_overhead_us sh senv;
  let client_test, _server_test =
    T.Stack.establish pair ~rounds:(rounds + warmup)
  in
  (* faults start only after the handshake so every run reaches steady
     state; the window widens because retransmission timeouts back off *)
  (match fault with
  | None -> ()
  | Some spec ->
    install_fault ~seed:(seed lxor 0x5EED) ~metrics:pair.T.Stack.metrics spec
      ~fabric
      ~client_lance:pair.T.Stack.client.T.Stack.lance
      ~server_lance:pair.T.Stack.server.T.Stack.lance);
  let window_us = if fault = None then None else Some 60.0e6 in
  let rtts =
    drive ~sim:pair.T.Stack.sim ~ch ?window_us ~span
      ~start:(fun () -> T.Tcptest.start client_test)
      ~on_roundtrip:(T.Tcptest.set_on_roundtrip client_test)
      ~completed:(fun () -> T.Tcptest.rounds_completed client_test)
      ~rounds ~warmup ()
  in
  finish ~params ~config ~desc:tcpip_desc ~ch ~rtts
    ~retransmissions:(T.Tcp.retransmits pair.T.Stack.client.T.Stack.tcp)
    ~metrics:pair.T.Stack.metrics ~events:tracer ~spans:span

let run_rpc ?fault ?extra_meter ?(trace_events = false) ?(spans = false)
    ~topology ~seed ~rounds ~warmup ~params ~(config : Config.t) ~layout () =
  let client_image = build_image config rpc_client_desc ~layout in
  (* the server always runs the best version (§4.2) *)
  let server_image =
    build_image (Config.make Config.All) rpc_server_desc
      ~layout:Config.Bipartite
  in
  let net =
    R.Rstack.make_net
      ~opts_for:(fun i ->
        if i = 0 then config.Config.opts else T.Opts.improved)
      ~topology ()
  in
  let pair = R.Rstack.pair_of_net net in
  let fabric = net.R.Rstack.fabric in
  let cenv = pair.R.Rstack.client.R.Rstack.env in
  let senv = pair.R.Rstack.server.R.Rstack.env in
  let tracer = make_tracer ~trace_events pair.R.Rstack.sim in
  install_tracer tracer ~cenv ~senv ~fabric
    ~client_lance:pair.R.Rstack.client.R.Rstack.lance
    ~server_lance:pair.R.Rstack.server.R.Rstack.lance;
  let span = make_span ~spans pair.R.Rstack.sim in
  install_span span ~cenv ~senv ~fabric
    ~client_lance:pair.R.Rstack.client.R.Rstack.lance
    ~server_lance:pair.R.Rstack.server.R.Rstack.lance;
  perturb cenv.Ns.Host_env.simmem seed;
  perturb senv.Ns.Host_env.simmem (seed + 17);
  let ch =
    make_hstate ~params ~image:client_image ~sim:pair.R.Rstack.sim
      ~simmem:cenv.Ns.Host_env.simmem
  in
  let sh =
    make_hstate ~params ~image:server_image ~sim:pair.R.Rstack.sim
      ~simmem:senv.Ns.Host_env.simmem
  in
  cenv.Ns.Host_env.meter <- compose_meter (make_meter ch) extra_meter;
  senv.Ns.Host_env.meter <- compose_meter (make_meter sh) extra_meter;
  install_phase_hook ch cenv;
  install_phase_hook sh senv;
  let client_test, _server_test =
    R.Rstack.make_tests pair ~rounds:(rounds + warmup)
  in
  (match fault with
  | None -> ()
  | Some spec ->
    install_fault ~seed:(seed lxor 0x5EED) ~metrics:pair.R.Rstack.metrics spec
      ~fabric
      ~client_lance:pair.R.Rstack.client.R.Rstack.lance
      ~server_lance:pair.R.Rstack.server.R.Rstack.lance);
  let window_us = if fault = None then None else Some 60.0e6 in
  let rtts =
    drive ~sim:pair.R.Rstack.sim ~ch ?window_us ~span
      ~start:(fun () -> R.Xrpctest.start client_test)
      ~on_roundtrip:(R.Xrpctest.set_on_roundtrip client_test)
      ~completed:(fun () -> R.Xrpctest.rounds_completed client_test)
      ~rounds ~warmup ()
  in
  finish ~params ~config ~desc:rpc_client_desc ~ch ~rtts
    ~retransmissions:
      (R.Chan.request_retransmits pair.R.Rstack.client.R.Rstack.chan)
    ~metrics:pair.R.Rstack.metrics ~events:tracer ~spans:span

(* ----- run specification: the single construction path for runs -------- *)

module Spec = struct
  type t = {
    stack : stack_kind;
    config : Config.t;
    topology : Ns.Topology.t;
        (* wiring between the two endpoints: [pair] is the historic direct
           link; [star]/[line] with 2 hosts route through the switched
           fabric (store-and-forward adds per-hop latency and spans) *)
    seed : int;
    rounds : int;
    warmup : int;
    params : Machine.Params.t;
    layout : Config.layout option;
    rx_overhead_us : float;
    fault : Ns.Fault.spec option;
    extra_meter : Xk.Meter.t option;
    trace_events : bool;
    spans : bool option;
        (* None: follow the PROTOLAT_SPANS environment knob *)
  }

  let make ?(topology = Ns.Topology.pair ()) ?(seed = 42) ?(rounds = 24)
      ?(warmup = 8) ?(params = Machine.Params.default) ?layout
      ?(rx_overhead_us = 0.0) ?fault ?extra_meter ?(trace_events = false)
      ?spans ~stack ~config () =
    { stack;
      config;
      topology;
      seed;
      rounds;
      warmup;
      params;
      layout;
      rx_overhead_us;
      fault;
      extra_meter;
      trace_events;
      spans }

  let default ~stack ~config = make ~stack ~config ()

  let with_seed seed t = { t with seed }
end

let run (spec : Spec.t) =
  let { Spec.stack;
        config;
        topology;
        seed;
        rounds;
        warmup;
        params;
        layout;
        rx_overhead_us;
        fault;
        extra_meter;
        trace_events;
        spans } =
    spec
  in
  if Ns.Topology.hosts topology <> 2 then
    invalid_arg
      "Engine.run: spec topology must have exactly 2 hosts (use Incast for \
       N-host fabric scenarios)";
  let spans = match spans with Some b -> b | None -> Obs.Span.knob_on () in
  let layout =
    match layout with
    | Some l -> l
    | None -> Config.layout_of config.Config.version
  in
  match stack with
  | Tcpip ->
    run_tcpip ~rx_overhead_us ?fault ?extra_meter ~trace_events ~spans
      ~topology ~seed ~rounds ~warmup ~params ~config ~layout ()
  | Rpc ->
    run_rpc ?fault ?extra_meter ~trace_events ~spans ~topology ~seed ~rounds
      ~warmup ~params ~config ~layout ()

(* ----- bulk-transfer throughput (§4.1: "none of the techniques
   negatively affected throughput"; §2.2.5: CPU utilization) ------------- *)

type throughput_result = {
  mbits_per_s : float;
  elapsed_us : float;
  client_cpu_pct : float;  (** client CPU busy share during the transfer *)
  server_cpu_pct : float;
  segments : int;
}

let throughput ?(bytes = 64 * 1024) ?(params = Machine.Params.default)
    ?(topology = Ns.Topology.pair ()) ~(config : Config.t) () =
  let layout = Config.layout_of config.Config.version in
  let client_image = build_image config tcpip_desc ~layout in
  let pair =
    T.Stack.pair_of_net
      (T.Stack.make_net ~opts_for:(fun _ -> config.Config.opts) ~topology ())
  in
  let cenv = pair.T.Stack.client.T.Stack.env in
  let senv = pair.T.Stack.server.T.Stack.env in
  let ch =
    make_hstate ~params ~image:client_image ~sim:pair.T.Stack.sim
      ~simmem:cenv.Ns.Host_env.simmem
  in
  let sh =
    make_hstate ~params ~image:client_image ~sim:pair.T.Stack.sim
      ~simmem:senv.Ns.Host_env.simmem
  in
  cenv.Ns.Host_env.meter <- make_meter ch;
  senv.Ns.Host_env.meter <- make_meter sh;
  install_phase_hook ch cenv;
  install_phase_hook sh senv;
  let received = ref 0 in
  T.Tcp.listen pair.T.Stack.server.T.Stack.tcp ~port:5001
    ~receive:(fun _ data -> received := !received + Bytes.length data);
  let session =
    T.Tcp.connect pair.T.Stack.client.T.Stack.tcp ~local_port:3000
      ~remote_ip:pair.T.Stack.server.T.Stack.ip_addr ~remote_port:5001
      ~receive:(fun _ _ -> ())
  in
  ignore (Ns.Sim.run ~until:(Ns.Sim.now pair.T.Stack.sim +. 50_000.0) pair.T.Stack.sim);
  if T.Tcp.state session <> T.Tcb.Established then
    failwith "Engine.throughput: handshake failed";
  let t0 = Ns.Sim.now pair.T.Stack.sim in
  let cpu0_c = ch.busy_us.(0) and cpu0_s = sh.busy_us.(0) in
  Ns.Host_env.phase cenv "bulk_send" (fun () ->
      T.Tcp.send session (Bytes.make bytes 'b'));
  let deadline = t0 +. 10.0e6 in
  let rec pump () =
    if !received < bytes && Ns.Sim.now pair.T.Stack.sim < deadline then begin
      ignore (Ns.Sim.run ~until:(Ns.Sim.now pair.T.Stack.sim +. 10_000.0) pair.T.Stack.sim);
      pump ()
    end
  in
  pump ();
  if !received < bytes then
    failwith
      (Printf.sprintf "Engine.throughput: only %d of %d bytes arrived"
         !received bytes);
  let elapsed = Ns.Sim.now pair.T.Stack.sim -. t0 in
  let cb = T.Tcp.tcb session in
  { mbits_per_s = float_of_int (bytes * 8) /. elapsed;
    elapsed_us = elapsed;
    client_cpu_pct = 100.0 *. (ch.busy_us.(0) -. cpu0_c) /. elapsed;
    server_cpu_pct = 100.0 *. (sh.busy_us.(0) -. cpu0_s) /. elapsed;
    segments = cb.T.Tcb.segments_out }

type sample_set = {
  rtt : Util.Stats.summary;
  result : run_result;
}

let sample_seed i = 1000 + (i * 7919)

let collect results =
  let n = List.length results in
  if n = 0 then invalid_arg "Engine.collect: no results";
  let means = List.map (fun r -> Util.Stats.mean r.rtts) results in
  { rtt = Util.Stats.summarize means; result = List.nth results (n - 1) }

let sample ?(samples = 10) ?(jobs = 1) (spec : Spec.t) =
  let tasks =
    List.init samples (fun i ->
        fun () -> run (Spec.with_seed (sample_seed i) spec))
  in
  collect (Util.Dpool.run ~jobs tasks)
