module Obs = Protolat_obs
module Stats = Protolat_util.Stats
module Table = Protolat_util.Table

type cell = {
  layout : Config.layout;
  run : Engine.run_result;
  msgs : Obs.Span.message array;
  budget : Obs.Span.budget;
}

type t = {
  stack : Engine.stack_kind;
  version : Config.version;
  topology : Protolat_netsim.Topology.t;
  seed : int;
  rounds : int;
  cells : cell list;
}

(* Same candidate set as the layout sweep; kept local so Experiments stays
   free to depend on this module. *)
let default_layouts =
  [ Config.Bipartite; Config.Micro; Config.Linear; Config.Link_order;
    Config.Pessimal ]

let collect_one ?(topology = Protolat_netsim.Topology.pair ()) ?(seed = 42)
    ?(rounds = 24) ?fault ~stack ~version ~layout () =
  let config = Config.make version in
  let run =
    Engine.run
      (Engine.Spec.make ~topology ~seed ~rounds ~stack ~config ~layout ?fault
         ~spans:true ())
  in
  let msgs = Obs.Span.messages run.Engine.spans in
  { layout; run; msgs; budget = Obs.Span.budget msgs }

let collect ?(topology = Protolat_netsim.Topology.pair ()) ?(seed = 42)
    ?(rounds = 24) ?(layouts = default_layouts) ?fault ?jobs ~stack ~version
    () =
  let cells =
    Protolat_util.Dpool.run ?jobs
      (List.map
         (fun layout ->
           fun () ->
            collect_one ~topology ~seed ~rounds ?fault ~stack ~version ~layout
              ())
         layouts)
  in
  { stack; version; topology; seed; rounds; cells }

(* ----- consistency check (the acceptance bar) ------------------------------ *)

let check t =
  let errs =
    List.filter_map
      (fun c ->
        match Obs.Span.conserved c.msgs ~rtts:c.run.Engine.rtts with
        | Ok () -> None
        | Error e ->
          Some (Printf.sprintf "[%s] %s" (Config.layout_name c.layout) e))
      t.cells
  in
  match errs with [] -> Ok () | es -> Error (String.concat "\n" es)

(* ----- rendering ----------------------------------------------------------- *)

let header t =
  Printf.sprintf "%s / %s  seed=%d  latency provenance (µs per roundtrip)"
    (Engine.stack_name t.stack)
    (Config.version_name t.version)
    t.seed

let mean_stage c s =
  if c.budget.Obs.Span.messages = 0 then 0.0
  else
    c.budget.Obs.Span.stage_us.(s)
    /. float_of_int c.budget.Obs.Span.messages

let mean_host c h =
  if c.budget.Obs.Span.messages = 0 then 0.0
  else
    Array.fold_left ( +. ) 0.0 c.budget.Obs.Span.host_stage_us.(h)
    /. float_of_int c.budget.Obs.Span.messages

let share c v =
  if c.budget.Obs.Span.mean_rtt_us <= 0.0 then 0.0
  else 100.0 *. v /. c.budget.Obs.Span.mean_rtt_us

let render t =
  let layouts = List.map (fun c -> Config.layout_name c.layout) t.cells in
  let tbl =
    Table.create ~title:(header t) ~headers:("stage" :: layouts)
  in
  for s = 0 to Obs.Span.n_stages - 1 do
    Table.add_row tbl
      (Obs.Span.stage_name s
      :: List.map
           (fun c ->
             let v = mean_stage c s in
             Printf.sprintf "%s (%4.1f%%)" (Table.cell_f ~digits:2 v)
               (share c v))
           t.cells)
  done;
  Table.add_separator tbl;
  Table.add_row tbl
    ("total (=RTT)"
    :: List.map
         (fun c -> Table.cell_f ~digits:2 c.budget.Obs.Span.mean_rtt_us)
         t.cells);
  Table.add_row tbl
    ("messages"
    :: List.map
         (fun c -> string_of_int c.budget.Obs.Span.messages)
         t.cells);
  Table.add_row tbl
    ("extra generations"
    :: List.map
         (fun c -> string_of_int c.budget.Obs.Span.extra_generations)
         t.cells);
  let hosts =
    Table.create ~title:"time on each host (µs per roundtrip)"
      ~headers:("host" :: layouts)
  in
  for h = 0 to Obs.Span.n_hosts - 1 do
    Table.add_row hosts
      (Obs.Span.host_name h
      :: List.map
           (fun c ->
             let v = mean_host c h in
             Printf.sprintf "%s (%4.1f%%)" (Table.cell_f ~digits:2 v)
               (share c v))
           t.cells)
  done;
  Table.render tbl ^ "\n" ^ Table.render hosts

(* ----- JSON ---------------------------------------------------------------- *)

let add_f b x =
  if Float.is_integer x && Float.abs x < 1e15 then Printf.bprintf b "%.0f" x
  else Printf.bprintf b "%.6f" x

let add_farr b a =
  Buffer.add_char b '[';
  Array.iteri
    (fun i x ->
      if i > 0 then Buffer.add_char b ',';
      add_f b x)
    a;
  Buffer.add_char b ']'

let to_json t =
  let b = Buffer.create 4096 in
  Printf.bprintf b
    "{\"schema_version\":%d,\"stack\":\"%s\",\"version\":\"%s\",\"topology\":\"%s\",\"seed\":%d,\"rounds\":%d,"
    Obs.Json.schema_version
    (Engine.stack_name t.stack)
    (Config.version_name t.version)
    (Protolat_netsim.Topology.to_string t.topology)
    t.seed t.rounds;
  Buffer.add_string b "\"stages\":[";
  for s = 0 to Obs.Span.n_stages - 1 do
    if s > 0 then Buffer.add_char b ',';
    Printf.bprintf b "\"%s\"" (Obs.Span.stage_name s)
  done;
  Buffer.add_string b "],\"hosts\":[";
  for h = 0 to Obs.Span.n_hosts - 1 do
    if h > 0 then Buffer.add_char b ',';
    Printf.bprintf b "\"%s\"" (Obs.Span.host_name h)
  done;
  Buffer.add_string b "],\"layouts\":[";
  List.iteri
    (fun i c ->
      if i > 0 then Buffer.add_char b ',';
      Printf.bprintf b "{\"layout\":\"%s\",\"messages\":%d,"
        (Config.layout_name c.layout)
        c.budget.Obs.Span.messages;
      Buffer.add_string b "\"mean_rtt_us\":";
      add_f b c.budget.Obs.Span.mean_rtt_us;
      Printf.bprintf b ",\"extra_generations\":%d,"
        c.budget.Obs.Span.extra_generations;
      Buffer.add_string b "\"stage_mean_us\":";
      add_farr b
        (Array.init Obs.Span.n_stages (fun s -> mean_stage c s));
      Buffer.add_string b ",\"host_stage_us\":[";
      Array.iteri
        (fun h row ->
          if h > 0 then Buffer.add_char b ',';
          ignore row;
          add_farr b c.budget.Obs.Span.host_stage_us.(h))
        c.budget.Obs.Span.host_stage_us;
      Printf.bprintf b "],\"conserved\":%b,"
        (match Obs.Span.conserved c.msgs ~rtts:c.run.Engine.rtts with
        | Ok () -> true
        | Error _ -> false);
      Buffer.add_string b "\"retransmissions\":";
      Printf.bprintf b "%d}" c.run.Engine.retransmissions)
    t.cells;
  Buffer.add_string b "]}";
  Buffer.contents b

(* ----- Perfetto ------------------------------------------------------------ *)

let perfetto t =
  let tracks =
    List.mapi
      (fun i c ->
        { Obs.Perfetto.span_pid = 100 + i;
          span_pname =
            Printf.sprintf "%s/%s %s spans"
              (Engine.stack_name t.stack)
              (Config.version_name t.version)
              (Config.layout_name c.layout);
          msgs = c.msgs })
      t.cells
  in
  Obs.Perfetto.to_string ~spans:tracks []
