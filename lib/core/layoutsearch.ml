module Util = Protolat_util
module Machine = Protolat_machine
module Layout = Protolat_layout
module Obs = Protolat_obs
module Table = Util.Table
module Rng = Util.Rng
module Dpool = Util.Dpool
module Trace = Machine.Trace
module Perf = Machine.Perf
module Memsys = Machine.Memsys
module Blockcache = Machine.Blockcache
module Params = Machine.Params
module Image = Layout.Image
module Strategy = Layout.Strategy

type genome = {
  perm : int array;
  offs : int array;
  cold : bool array;
}

type point = {
  eval : int;
  us : float;
}

type cell = {
  stack : Engine.stack_kind;
  icache_kb : int;
  evals : int;
  eval_s : float;
  named : (Config.layout * float) list;
  seeded : Config.layout list;
  best : genome;
  best_us : float;
  best_order : string list;
  greedy_us : float;
  trajectory : point list;
}

type t = {
  cells : cell list;
  budget : int;
  seeds : int;
  jobs : int;
  wall_s : float;
}

let all_geometries = [ 4; 8; 16; 32 ]

let geometries = all_geometries

(* The reference geometry the engine's own placement strategies target.
   Genome set offsets are congruences modulo this size at every search
   geometry: a genome then denotes one concrete placement regardless of
   the cell scoring it, the named strategies stay exactly representable
   (so seeding them guarantees best-found <= best hand-picked), and since
   the smaller layout_matrix geometries divide it, an 8KB congruence pins
   the 4KB set too. *)
let code_base = 0x10000

let icache_ref = 8192

let block_bytes = 32

let bcache_ref = 2 * 1024 * 1024

let nsets_ref = icache_ref / block_bytes

let ib = Machine.Instr.bytes

let named_candidates =
  [ Config.Bipartite; Config.Micro; Config.Linear; Config.Link_order;
    Config.Pessimal ]

let seedable_candidates =
  [ Config.Bipartite; Config.Micro; Config.Linear; Config.Link_order ]

let best_named c =
  c.named
  |> List.filter (fun (l, _) -> l <> Config.Pessimal)
  |> List.fold_left
       (fun acc (l, us) ->
         match acc with
         | Some (_, b) when b <= us -> acc
         | _ -> Some (l, us))
       None
  |> Option.get

let candidates_per_sec (t : t) =
  let evals = List.fold_left (fun a (c : cell) -> a + c.evals) 0 t.cells in
  let s = List.fold_left (fun a (c : cell) -> a +. c.eval_s) 0.0 t.cells in
  if s <= 0.0 then 0.0 else float_of_int evals /. s

(* ----- genomes ------------------------------------------------------------- *)

let genome_key g =
  let b = Buffer.create 128 in
  Array.iter (fun i -> Buffer.add_string b (string_of_int i);
               Buffer.add_char b ',') g.perm;
  Buffer.add_char b '|';
  Array.iter (fun i -> Buffer.add_string b (string_of_int i);
               Buffer.add_char b ',') g.offs;
  Buffer.add_char b '|';
  Array.iter (fun c -> Buffer.add_char b (if c then '1' else '0')) g.cold;
  Buffer.contents b

let copy_genome g =
  { perm = Array.copy g.perm; offs = Array.copy g.offs;
    cold = Array.copy g.cold }

(* ----- per-stack context ---------------------------------------------------- *)

(* Everything needed to turn a genome into the pc column of the retargeted
   trace by pure arithmetic, for one clone-toggle vector.  Under a fixed
   vector every placement is a translation of each unit's slots plus a
   prefix-sum relocation of the shared cold region, so one template image
   per vector replaces an [Image.build] per candidate — the difference
   between ~600 and >1000 candidates/sec. *)
type template = {
  sizes : int array;  (** unit footprint at its base address *)
  cold_sizes : int array;  (** unit's chunk of the shared cold region *)
  last_end : int array;  (** (last slot byte end) - unit base *)
  ev_unit : int array;  (** per trace event: owning unit *)
  ev_cold : Bytes.t;  (** per trace event: 1 if in the cold region *)
  ev_off : int array;  (** per trace event: offset from the unit's anchor *)
}

type sctx = {
  config : Config.t;
  stack : Engine.stack_kind;
  base : Engine.run_result;
  units : Image.unit_spec array;  (** canonical order, engine toggles *)
  order : string list;
  nu : int;
  unit_names : string array;
  base_cold : bool array;
  toggleable : bool array;
  toggles : int array;  (** indices of toggleable units *)
  unit_of_func : (string, int) Hashtbl.t;
  templates : (string, template) Hashtbl.t;  (** keyed by cold vector *)
}

let cold_key cold =
  String.init (Array.length cold) (fun i -> if cold.(i) then '1' else '0')

let apply_cold sctx cold =
  Array.mapi
    (fun i u ->
      if cold.(i) <> sctx.base_cold.(i) then Image.set_separate_cold u cold.(i)
      else u)
    sctx.units

let build_template sctx cold =
  let t_units = apply_cold sctx cold in
  let placement =
    Strategy.at_offsets ~base:code_base ~icache_bytes:icache_ref ~block_bytes
      (Array.to_list (Array.map (fun u -> (u, -1)) t_units))
  in
  let img = Image.build placement in
  let bases = Array.of_list (List.map snd placement) in
  let sizes = Array.map Image.size_bytes t_units in
  let cold_sizes = Array.map Image.cold_size_bytes t_units in
  let nu = sctx.nu in
  let tpre = Array.make nu 0 in
  let acc = ref 0 in
  for i = 0 to nu - 1 do
    tpre.(i) <- !acc;
    acc := !acc + cold_sizes.(i)
  done;
  let cold_start =
    List.fold_left
      (fun acc (n, s, _) -> if n = "<cold-region>" then s else acc)
      max_int (Image.regions img)
  in
  let last_end = Array.make nu 0 in
  List.iter
    (fun (s : Image.slot) ->
      if s.Image.addr < cold_start then begin
        let u = Hashtbl.find sctx.unit_of_func s.Image.func in
        let last = s.Image.pcs.(Array.length s.Image.pcs - 1) in
        if last + ib - bases.(u) > last_end.(u) then
          last_end.(u) <- last + ib - bases.(u)
      end)
    (Image.slots img);
  let trace = sctx.base.Engine.trace in
  let len = Trace.length trace in
  let b2t = Image.pc_map sctx.base.Engine.client_image img in
  let ev_unit = Array.make len 0 in
  let ev_cold = Bytes.make len '\000' in
  let ev_off = Array.make len 0 in
  for i = 0 to len - 1 do
    let tpc = b2t (Trace.pc_at trace i) in
    if tpc >= cold_start then begin
      let rec findc u =
        if u = nu - 1 || cold_start + tpre.(u + 1) > tpc then u
        else findc (u + 1)
      in
      let u = findc 0 in
      ev_unit.(i) <- u;
      Bytes.set ev_cold i '\001';
      ev_off.(i) <- tpc - cold_start - tpre.(u)
    end
    else begin
      (* dense canonical placement: bases increase, so the first unit
         whose extent reaches past the pc owns it *)
      let rec findu u =
        if u = nu - 1 || tpc < bases.(u) + sizes.(u) then u
        else findu (u + 1)
      in
      let u = findu 0 in
      ev_unit.(i) <- u;
      ev_off.(i) <- tpc - bases.(u)
    end
  done;
  { sizes; cold_sizes; last_end; ev_unit; ev_cold; ev_off }

let template_for sctx cold =
  let k = cold_key cold in
  match Hashtbl.find_opt sctx.templates k with
  | Some t -> t
  | None ->
    let t = build_template sctx cold in
    Hashtbl.add sctx.templates k t;
    t

let make_sctx stack =
  let config = Config.make Config.Clo in
  let base_layout = Config.layout_of config.Config.version in
  let base =
    Engine.run (Engine.Spec.make ~stack ~config ~layout:base_layout ())
  in
  let units_l, order = Engine.client_units config stack in
  let units = Array.of_list units_l in
  let nu = Array.length units in
  let unit_names = Array.map Image.unit_name units in
  let base_cold = Array.map Image.unit_separate_cold units in
  let toggleable =
    Array.map
      (fun u ->
        Image.unit_outlined u
        && Image.cold_size_bytes (Image.set_separate_cold u true) > 0)
      units
  in
  let toggles =
    Array.of_list
      (List.filteri (fun i _ -> toggleable.(i))
         (List.init nu (fun i -> i)))
  in
  let unit_of_func = Hashtbl.create 64 in
  Array.iteri
    (fun i u ->
      List.iter
        (fun f -> Hashtbl.replace unit_of_func f.Layout.Func.name i)
        (Image.unit_funcs u))
    units;
  { config; stack; base; units; order; nu; unit_names; base_cold; toggleable;
    toggles; unit_of_func; templates = Hashtbl.create 8 }

(* ----- scorer --------------------------------------------------------------- *)

type cctx = {
  s : sctx;
  icache_kb : int;
  params : Params.t;
  bc0 : Blockcache.t;
  issue_cycles : float;
  instr_cycles : float;
  pairs : (int * int * int) array;  (* (victim unit, evictor unit, count) *)
  pair_total : int;
}

(* Per-domain scratch hierarchy: [Memsys.clear] per candidate instead of
   [Memsys.create], valid across candidates because every rebind starts
   with fresh generation snapshots.  Keyed by params so a geometry switch
   reallocates. *)
let scratch_slot : (Params.t * Memsys.t) option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let scratch_for p =
  let r = Domain.DLS.get scratch_slot in
  match !r with
  | Some (p', m) when p' = p -> m
  | _ ->
    let m = Memsys.create p in
    r := Some (p, m);
    m

(* Decode a genome to the candidate's pc column: place units with the
   [Strategy.at_offsets] cursor arithmetic, derive the shared cold
   region's start the way [Image.build] does, then anchor every event's
   precomputed (unit, offset). *)
let candidate_pcs cc tmpl g =
  let nu = cc.s.nu in
  let ubase = Array.make nu 0 and cbase = Array.make nu 0 in
  let cursor = ref code_base and max_addr = ref 0 in
  for k = 0 to nu - 1 do
    let u = g.perm.(k) in
    let off = g.offs.(k) in
    let addr =
      if off < 0 then (!cursor + block_bytes - 1) / block_bytes * block_bytes
      else begin
        let offset_bytes = off mod nsets_ref * block_bytes in
        let candidate = (!cursor / icache_ref * icache_ref) + offset_bytes in
        let minimal =
          if candidate >= !cursor then candidate else candidate + icache_ref
        in
        minimal + (off / nsets_ref * icache_ref)
      end
    in
    ubase.(u) <- addr;
    cursor := addr + tmpl.sizes.(u);
    let e = addr + tmpl.last_end.(u) in
    if e > !max_addr then max_addr := e
  done;
  let cold_start = (!max_addr + 4096 + 31) / 32 * 32 in
  let pre = ref 0 in
  for k = 0 to nu - 1 do
    let u = g.perm.(k) in
    cbase.(u) <- cold_start + !pre;
    pre := !pre + tmpl.cold_sizes.(u)
  done;
  let ev_unit = tmpl.ev_unit and ev_off = tmpl.ev_off in
  let ev_cold = tmpl.ev_cold in
  let len = Array.length ev_unit in
  let pcs = Array.make len 0 in
  for i = 0 to len - 1 do
    let u = Array.unsafe_get ev_unit i in
    let b =
      if Bytes.unsafe_get ev_cold i = '\001' then Array.unsafe_get cbase u
      else Array.unsafe_get ubase u
    in
    Array.unsafe_set pcs i (b + Array.unsafe_get ev_off i)
  done;
  pcs

(* One warmup replay suffices: the deterministic replay reaches its
   periodic cache fixpoint after a single pass, so the measurement equals
   the canonical [Perf.steady] (warmup 3) bit for bit — [check] and the
   tests re-simulate through that path and fail loudly if a future trace
   ever breaks the fixpoint. *)
let scorer_warmup = 1

let score_genome cc tmpl g =
  let pcs = candidate_pcs cc tmpl g in
  let trace' = Trace.remap_pcs cc.s.base.Engine.trace pcs in
  let bc' = Blockcache.rebind cc.bc0 trace' in
  (Perf.steady_scratch ~warmup:scorer_warmup ~scratch:(scratch_for cc.params)
     ~issue_cycles:cc.issue_cycles ~instr_cycles:cc.instr_cycles cc.params bc')
    .Perf.time_us

(* Score an arbitrary pre-built image (named strategies, incl. pessimal)
   through the same incremental path, so every number in a cell is the
   same measurement. *)
let score_image cc img =
  let trace' =
    Trace.map_pcs
      (Image.pc_map cc.s.base.Engine.client_image img)
      cc.s.base.Engine.trace
  in
  let bc' = Blockcache.rebind cc.bc0 trace' in
  (Perf.steady_scratch ~warmup:scorer_warmup ~scratch:(scratch_for cc.params)
     ~issue_cycles:cc.issue_cycles ~instr_cycles:cc.instr_cycles cc.params bc')
    .Perf.time_us

(* ----- search state --------------------------------------------------------- *)

type state = {
  cc : cctx;
  budget : int;
  jobs : int;
  memo : (string, float) Hashtbl.t;
  mutable evals : int;
  mutable eval_s : float;
  mutable best : (genome * float) option;
  mutable traj : point list;  (* newest first *)
}

let note_best st g us =
  match st.best with
  | Some (_, b) when b <= us -> ()
  | _ ->
    st.best <- Some (g, us);
    st.traj <- { eval = st.evals; us } :: st.traj

(* Score a batch.  Proposals were generated on this domain; only the pure
   scoring fans out, and [Dpool.run] returns submission-order results, so
   memo/best/trajectory updates are identical at any job count.  Memo
   hits are free; fresh genomes consume budget. *)
let eval_batch st genomes =
  let fresh = ref [] and n_fresh = ref 0 in
  let seen = Hashtbl.create 16 in
  List.iter
    (fun g ->
      let k = genome_key g in
      if
        (not (Hashtbl.mem st.memo k))
        && (not (Hashtbl.mem seen k))
        && st.evals + !n_fresh < st.budget
      then begin
        Hashtbl.add seen k ();
        incr n_fresh;
        fresh := (k, g) :: !fresh
      end)
    genomes;
  let fresh = List.rev !fresh in
  if fresh <> [] then begin
    let tasks =
      List.map
        (fun (_, g) ->
          (* resolve the template here: the table is not thread-safe *)
          let tmpl = template_for st.cc.s g.cold in
          fun () -> score_genome st.cc tmpl g)
        fresh
    in
    let t0 = Unix.gettimeofday () in
    let scores = Dpool.run ~jobs:st.jobs tasks in
    st.eval_s <- st.eval_s +. (Unix.gettimeofday () -. t0);
    List.iter2
      (fun (k, g) us ->
        st.evals <- st.evals + 1;
        Hashtbl.replace st.memo k us;
        note_best st g us)
      fresh scores
  end;
  List.map (fun g -> Hashtbl.find_opt st.memo (genome_key g)) genomes

(* ----- moves ---------------------------------------------------------------- *)

let pos_of g u =
  let rec go k = if g.perm.(k) = u then k else go (k + 1) in
  go 0

let pick_pair cc rng =
  if Array.length cc.pairs = 0 || cc.pair_total <= 0 then None
  else begin
    let r = Rng.int rng cc.pair_total in
    let rec go i acc =
      let ((_, _, c) as p) = cc.pairs.(i) in
      if r < acc + c || i = Array.length cc.pairs - 1 then p
      else go (i + 1) (acc + c)
    in
    Some (go 0 0)
  end

(* One Attrib-guided mutation.  The conflict matrix names the
   (victim, evictor) pair most worth separating; moves either re-seat the
   victim (set-offset shift), exchange the two units, pull the victim
   dense behind the evictor (adjacent code cannot conflict), drop an
   offset back to dense packing, or flip a clone toggle. *)
let propose st rng cur =
  let cc = st.cc in
  let s = cc.s in
  let g = copy_genome cur in
  let u, v =
    match pick_pair cc rng with
    | Some (vi, ev, _) -> if Rng.bool rng then (vi, ev) else (ev, vi)
    | None ->
      let a = Rng.int rng s.nu in
      let b = (a + 1 + Rng.int rng (s.nu - 1)) mod s.nu in
      (a, b)
  in
  let kind = Rng.int rng 100 in
  if kind < 30 then g.offs.(pos_of g u) <- Rng.int rng nsets_ref
  else if kind < 55 then begin
    let ku = pos_of g u and kv = pos_of g v in
    let pu = g.perm.(ku) in
    g.perm.(ku) <- g.perm.(kv);
    g.perm.(kv) <- pu
  end
  else if kind < 75 then begin
    let ku = pos_of g u and kv = pos_of g v in
    if ku < kv then begin
      let pu = g.perm.(ku) in
      Array.blit g.perm (ku + 1) g.perm ku (kv - ku);
      Array.blit g.offs (ku + 1) g.offs ku (kv - ku);
      g.perm.(kv) <- pu;
      g.offs.(kv) <- -1
    end
    else if ku > kv then begin
      let pu = g.perm.(ku) in
      Array.blit g.perm (kv + 1) g.perm (kv + 2) (ku - kv - 1);
      Array.blit g.offs (kv + 1) g.offs (kv + 2) (ku - kv - 1);
      g.perm.(kv + 1) <- pu;
      g.offs.(kv + 1) <- -1
    end
  end
  else if kind < 85 then g.offs.(pos_of g u) <- -1
  else begin
    let cand =
      if s.toggleable.(u) then Some u
      else if s.toggleable.(v) then Some v
      else if Array.length s.toggles > 0 then
        Some s.toggles.(Rng.int rng (Array.length s.toggles))
      else None
    in
    match cand with
    | Some w -> g.cold.(w) <- not g.cold.(w)
    | None -> g.offs.(pos_of g u) <- Rng.int rng nsets_ref
  end;
  g

(* ----- named layouts and seeds ---------------------------------------------- *)

(* The exact placements [Engine.build_image] constructs, from the same
   units and invocation order. *)
let named_placement sctx layout =
  let units = Array.to_list sctx.units in
  let order = sctx.order in
  match layout with
  | Config.Link_order ->
    let sorted =
      List.sort
        (fun a b -> compare (Image.unit_name a) (Image.unit_name b))
        units
    in
    Strategy.link_order ~base:code_base sorted
  | Config.Bipartite ->
    Strategy.bipartite ~base:code_base ~icache_bytes:icache_ref ~order units
  | Config.Pessimal ->
    Strategy.pessimal ~base:code_base ~icache_bytes:icache_ref
      ~bcache_bytes:bcache_ref units
  | Config.Micro ->
    Strategy.micro_position ~base:code_base ~icache_bytes:icache_ref
      ~block_bytes ~ref_seq:order units
  | Config.Linear -> Strategy.invocation_order ~base:code_base ~order units

let unit_index sctx name =
  let rec go i = if sctx.unit_names.(i) = name then i else go (i + 1) in
  go 0

let genome_of_placement sctx placement =
  (* replicate the decoder's cursor so each offset can carry the number
     of whole reference periods the placement deliberately skips *)
  let cursor = ref code_base in
  let offs =
    List.map
      (fun (u, a) ->
        let set = a / block_bytes mod nsets_ref in
        let candidate = (!cursor / icache_ref * icache_ref) + (set * block_bytes) in
        let minimal =
          if candidate >= !cursor then candidate else candidate + icache_ref
        in
        cursor := a + Image.size_bytes u;
        set + ((a - minimal) / icache_ref * nsets_ref))
      placement
  in
  { perm =
      Array.of_list
        (List.map (fun (u, _) -> unit_index sctx (Image.unit_name u))
           placement);
    offs = Array.of_list offs;
    cold = Array.copy sctx.base_cold }

(* A genome encodes a named placement faithfully iff decoding it lands
   every unit at the original address — true whenever consecutive
   placements advance by less than one reference i-cache period, which
   holds for every strategy except pessimal (whose b-cache multiples are
   out of genome range by design). *)
let genome_reproduces sctx g placement =
  let decoded =
    Strategy.at_offsets ~base:code_base ~icache_bytes:icache_ref ~block_bytes
      (Array.to_list
         (Array.mapi (fun k u -> (sctx.units.(u), g.offs.(k))) g.perm))
  in
  List.for_all2
    (fun (u1, a1) (u2, a2) ->
      Image.unit_name u1 = Image.unit_name u2 && a1 = a2)
    decoded placement

(* ----- per-cell search ------------------------------------------------------ *)

let stack_seed = function Engine.Tcpip -> 0 | Engine.Rpc -> 1

let search_cell ~budget ~seeds ~jobs sctx kb =
  let params =
    { Params.default with Params.icache_bytes = kb * 1024 }
  in
  let trace = sctx.base.Engine.trace in
  let bc0 = Blockcache.segment params trace in
  let issue_cycles = Machine.Cpu.issue_cycles params trace in
  let instr_cycles = Machine.Cpu.perfect_memory_cycles params trace in
  (* guidance: the conflict matrix of the base layout at this geometry *)
  let attrib = Obs.Attrib.profile params sctx.base.Engine.client_image trace in
  let pairs =
    Obs.Attrib.top_conflicts ~k:16 attrib
    |> List.filter_map (fun (c : Obs.Attrib.conflict) ->
           match
             ( Hashtbl.find_opt sctx.unit_of_func c.Obs.Attrib.victim,
               Hashtbl.find_opt sctx.unit_of_func c.Obs.Attrib.evictor )
           with
           | Some a, Some b -> Some (a, b, c.Obs.Attrib.count)
           | _ -> None)
    |> Array.of_list
  in
  let pair_total = Array.fold_left (fun a (_, _, c) -> a + c) 0 pairs in
  let cc =
    { s = sctx; icache_kb = kb; params; bc0; issue_cycles; instr_cycles;
      pairs; pair_total }
  in
  let st =
    { cc; budget; jobs; memo = Hashtbl.create 1024; evals = 0; eval_s = 0.0;
      best = None; traj = [] }
  in
  (* Named layouts: the four representable ones score through their seed
     genome (one batch), pessimal through a direct image retarget.  Seed
     scores land in the search memo, so best-found can never be worse
     than the best hand-picked layout. *)
  let seed_info =
    List.map
      (fun layout ->
        if List.mem layout seedable_candidates then begin
          let placement = named_placement sctx layout in
          let g = genome_of_placement sctx placement in
          if genome_reproduces sctx g placement then (layout, Some g)
          else (layout, None)
        end
        else (layout, None))
      named_candidates
  in
  let seed_genomes = List.filter_map snd seed_info in
  ignore (eval_batch st seed_genomes);
  let named =
    List.map
      (fun (layout, g) ->
        match g with
        | Some g -> (layout, Hashtbl.find st.memo (genome_key g))
        | None ->
          let img = Engine.layout_for sctx.config sctx.stack ~layout () in
          let t0 = Unix.gettimeofday () in
          let us = score_image cc img in
          st.eval_s <- st.eval_s +. (Unix.gettimeofday () -. t0);
          st.evals <- st.evals + 1;
          (layout, us))
      seed_info
  in
  let seeded = List.filter_map (fun (l, g) -> Option.map (fun _ -> l) g) seed_info in
  (* start from the best seed *)
  let start, start_us =
    List.fold_left
      (fun acc g ->
        let us = Hashtbl.find st.memo (genome_key g) in
        match acc with
        | Some (_, b) when b <= us -> acc
        | _ -> Some (g, us))
      None seed_genomes
    |> function
    | Some (g, us) -> (g, us)
    | None ->
      (* no seedable layout decoded (defensively unreachable): start from
         the canonical dense order *)
      let g =
        { perm = Array.init sctx.nu (fun i -> i);
          offs = Array.make sctx.nu (-1);
          cold = Array.copy sctx.base_cold }
      in
      (match eval_batch st [ g ] with
      | [ Some us ] -> (g, us)
      | _ -> (g, infinity))
  in
  let rng = Rng.create (42 + (stack_seed sctx.stack * 7919) + (kb * 101)) in
  (* phase 1: greedy hill-climb *)
  let batch = 16 in
  let cur = ref start and cur_us = ref start_us in
  let greedy_limit = st.evals + ((budget - st.evals) / 3) in
  let stale = ref 0 in
  while st.evals < greedy_limit && !stale < 3 do
    let before = st.evals in
    let props = List.init batch (fun _ -> propose st rng !cur) in
    let scores = eval_batch st props in
    let best_prop =
      List.fold_left2
        (fun acc g sc ->
          match (sc, acc) with
          | Some us, Some (_, b) when us < b -> Some (g, us)
          | Some us, None -> Some (g, us)
          | _ -> acc)
        None props scores
    in
    (match best_prop with
    | Some (g, us) when us < !cur_us ->
      cur := g;
      cur_us := us;
      stale := 0
    | _ -> incr stale);
    if st.evals = before then stale := 3
  done;
  let greedy_us = match st.best with Some (_, us) -> us | None -> start_us in
  (* phase 2: seeded simulated annealing with restarts *)
  let sa_start, sa_start_us =
    match st.best with Some (g, us) -> (g, us) | None -> (start, start_us)
  in
  let per_restart = if seeds <= 0 then 0 else (budget - st.evals) / seeds in
  for r = 0 to seeds - 1 do
    let rng_r =
      Rng.create
        ((1000003 * (r + 1)) + 42 + (stack_seed sctx.stack * 7919) + (kb * 101))
    in
    let cur = ref sa_start and cur_us = ref sa_start_us in
    let temp = ref (Float.max 0.02 (sa_start_us *. 0.01)) in
    let limit = min budget (st.evals + per_restart) in
    let dry = ref 0 in
    while st.evals < limit && !dry < 3 do
      let before = st.evals in
      let props = List.init 12 (fun _ -> propose st rng_r !cur) in
      let scores = eval_batch st props in
      List.iter2
        (fun g sc ->
          match sc with
          | Some us ->
            let delta = us -. !cur_us in
            if delta < 0.0 || Rng.float rng_r 1.0 < exp (-.delta /. !temp)
            then begin
              cur := g;
              cur_us := us
            end
          | None -> ())
        props scores;
      temp := Float.max 0.005 (!temp *. 0.93);
      if st.evals = before then incr dry else dry := 0
    done
  done;
  let best_g, best_us =
    match st.best with Some (g, us) -> (g, us) | None -> (start, start_us)
  in
  { stack = sctx.stack; icache_kb = kb; evals = st.evals; eval_s = st.eval_s;
    named; seeded; best = best_g; best_us;
    best_order =
      List.map (fun u -> sctx.unit_names.(u)) (Array.to_list best_g.perm);
    greedy_us;
    trajectory = List.rev st.traj }

(* ----- entry points --------------------------------------------------------- *)

let run ?(budget = 600) ?(seeds = 2) ?(geometries = all_geometries)
    ?(stacks = [ Engine.Tcpip; Engine.Rpc ]) ?(jobs = 1) () =
  let t0 = Unix.gettimeofday () in
  let cells =
    List.concat_map
      (fun stack ->
        let sctx = make_sctx stack in
        List.map (fun kb -> search_cell ~budget ~seeds ~jobs sctx kb)
          geometries)
      stacks
  in
  { cells; budget; seeds; jobs; wall_s = Unix.gettimeofday () -. t0 }

let digest (t : t) =
  let b = Buffer.create 4096 in
  Printf.bprintf b "layoutsearch:1|budget=%d|seeds=%d" t.budget t.seeds;
  List.iter
    (fun (c : cell) ->
      Printf.bprintf b "|%s:%dkb:e%d" (Engine.stack_name c.stack) c.icache_kb
        c.evals;
      List.iter
        (fun (l, us) -> Printf.bprintf b ";%s=%h" (Config.layout_name l) us)
        c.named;
      Printf.bprintf b ";seeded=%s"
        (String.concat "," (List.map Config.layout_name c.seeded));
      Printf.bprintf b ";best=%s=%h;greedy=%h" (genome_key c.best) c.best_us
        c.greedy_us;
      List.iter (fun p -> Printf.bprintf b ";t%d=%h" p.eval p.us) c.trajectory)
    t.cells;
  Digest.to_hex (Digest.string (Buffer.contents b))

let check (t : t) =
  let sctxs = Hashtbl.create 2 in
  let ctx_for stack =
    match Hashtbl.find_opt sctxs stack with
    | Some s -> s
    | None ->
      let s = make_sctx stack in
      Hashtbl.add sctxs stack s;
      s
  in
  let problem = ref None in
  List.iter
    (fun (c : cell) ->
      if !problem = None then begin
        let s = ctx_for c.stack in
        let t_units = apply_cold s c.best.cold in
        let placement =
          Strategy.at_offsets ~base:code_base ~icache_bytes:icache_ref
            ~block_bytes
            (Array.to_list
               (Array.mapi
                  (fun k u -> (t_units.(u), c.best.offs.(k)))
                  c.best.perm))
        in
        let img = Image.build placement in
        let params =
          { Params.default with Params.icache_bytes = c.icache_kb * 1024 }
        in
        let trace' =
          Trace.map_pcs
            (Image.pc_map s.base.Engine.client_image img)
            s.base.Engine.trace
        in
        let r = Perf.steady params trace' in
        if r.Perf.time_us <> c.best_us then
          problem :=
            Some
              (Printf.sprintf
                 "%s %d KB: scorer %.9f us but full simulation of the \
                  decoded best layout gives %.9f us"
                 (Engine.stack_name c.stack) c.icache_kb c.best_us
                 r.Perf.time_us)
        else if c.seeded <> [] then begin
          let bn =
            List.fold_left
              (fun acc (l, us) ->
                if List.mem l c.seeded then Float.min acc us else acc)
              infinity c.named
          in
          if c.best_us > bn then
            problem :=
              Some
                (Printf.sprintf
                   "%s %d KB: best-found %.9f us worse than seeded named \
                    best %.9f us"
                   (Engine.stack_name c.stack) c.icache_kb c.best_us bn)
        end
      end)
    t.cells;
  match !problem with Some m -> Error m | None -> Ok ()

let table (t : t) =
  let tbl =
    Table.create
      ~title:
        (Printf.sprintf
           "Automated layout search (budget %d evals/cell, %d restarts; \
            %.0f candidates/s)"
           t.budget t.seeds (candidates_per_sec t))
      ~headers:
        [ "Stack"; "i-cache"; "best named"; "named [us]"; "search [us]";
          "delta [us]"; "evals"; "cand/s" ]
  in
  let f2 = Table.cell_f ~digits:2 in
  List.iter
    (fun (c : cell) ->
      let bl, bus = best_named c in
      Table.add_row tbl
        [ Engine.stack_name c.stack;
          Printf.sprintf "%d KB" c.icache_kb;
          Config.layout_name bl;
          f2 bus;
          f2 c.best_us;
          f2 (c.best_us -. bus);
          string_of_int c.evals;
          (if c.eval_s > 0.0 then
             Printf.sprintf "%.0f" (float_of_int c.evals /. c.eval_s)
           else "-") ])
    t.cells;
  tbl

let render t = Table.render (table t)

let to_json (t : t) =
  let b = Buffer.create 8192 in
  Printf.bprintf b "{\"schema_version\":%d,\"budget\":%d,\"seeds\":%d,"
    Obs.Json.schema_version t.budget t.seeds;
  Printf.bprintf b "\"jobs\":%d,\"wall_s\":%.3f,\"candidates_per_sec\":%.1f,"
    t.jobs t.wall_s (candidates_per_sec t);
  Printf.bprintf b "\"digest\":%S,\"cells\":[" (digest t);
  List.iteri
    (fun i (c : cell) ->
      if i > 0 then Buffer.add_char b ',';
      Printf.bprintf b "{\"stack\":%S,\"icache_kb\":%d,\"evals\":%d,"
        (Engine.stack_name c.stack) c.icache_kb c.evals;
      Printf.bprintf b "\"eval_s\":%.3f,\"candidates_per_sec\":%.1f,"
        c.eval_s
        (if c.eval_s > 0.0 then float_of_int c.evals /. c.eval_s else 0.0);
      Buffer.add_string b "\"named\":[";
      List.iteri
        (fun j (l, us) ->
          if j > 0 then Buffer.add_char b ',';
          Printf.bprintf b "{\"layout\":%S,\"steady_us\":%.6f}"
            (Config.layout_name l) us)
        c.named;
      Buffer.add_string b "],\"seeded\":[";
      List.iteri
        (fun j l ->
          if j > 0 then Buffer.add_char b ',';
          Printf.bprintf b "%S" (Config.layout_name l))
        c.seeded;
      Printf.bprintf b "],\"best_us\":%.6f,\"greedy_us\":%.6f," c.best_us
        c.greedy_us;
      Buffer.add_string b "\"best_order\":[";
      List.iteri
        (fun j n ->
          if j > 0 then Buffer.add_char b ',';
          Printf.bprintf b "%S" n)
        c.best_order;
      Buffer.add_string b "],\"best_offsets\":[";
      Array.iteri
        (fun j o ->
          if j > 0 then Buffer.add_char b ',';
          Buffer.add_string b (string_of_int o))
        c.best.offs;
      Buffer.add_string b "],\"best_cold\":[";
      Array.iteri
        (fun j v ->
          if j > 0 then Buffer.add_char b ',';
          Buffer.add_string b (if v then "true" else "false"))
        c.best.cold;
      Buffer.add_string b "],\"trajectory\":[";
      List.iteri
        (fun j p ->
          if j > 0 then Buffer.add_char b ',';
          Printf.bprintf b "{\"eval\":%d,\"us\":%.6f}" p.eval p.us)
        c.trajectory;
      Buffer.add_string b "]}")
    t.cells;
  Buffer.add_string b "]}";
  Buffer.contents b
