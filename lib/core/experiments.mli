(** One entry point per table/figure of the paper (DESIGN.md §4).

    Each function returns a rendered table (or diagram) showing our measured
    values next to the paper's published ones.  [full_run] executes the six
    configurations on both stacks once; the per-table functions reuse it. *)

type results = {
  tcp : (Config.version * Engine.sample_set) list;
  rpc : (Config.version * Engine.sample_set) list;
}

val full_run :
  ?samples_tcp:int ->
  ?samples_rpc:int ->
  ?rounds:int ->
  ?jobs:int ->
  unit ->
  results
(** Defaults follow the paper: 10 samples for TCP/IP, 5 for RPC.  [jobs]
    (default 1) fans the independent (configuration, seed) runs across
    that many domains; results are bit-identical at any job count. *)

val get : results -> Engine.stack_kind -> Config.version -> Engine.sample_set
(** Look up one configuration's sample set in a [full_run] result. *)

val table1 : unit -> Protolat_util.Table.t
(** Dynamic instruction-count reductions of the §2.2 changes. *)

val table2 : unit -> Protolat_util.Table.t
(** Original vs improved x-kernel TCP/IP. *)

val table3 : unit -> Protolat_util.Table.t
(** Instruction counts per processing segment vs [CJRS89] and DEC Unix. *)

val profile :
  stack:Engine.stack_kind -> version:Config.version -> unit ->
  Protolat_util.Table.t
(** Per-function instruction breakdown of one steady-state roundtrip. *)

val instruction_mix :
  stack:Engine.stack_kind -> version:Config.version -> unit ->
  Protolat_util.Table.t

val table4 : results -> Protolat_util.Table.t
(** End-to-end roundtrip latency for the six versions. *)

val table5 : results -> Protolat_util.Table.t
(** Table 4 adjusted for the network controller constant. *)

val table6 : results -> Protolat_util.Table.t
(** Cache statistics (cold replay of the collected roundtrip trace). *)

val table7 : results -> Protolat_util.Table.t
(** Processing time, trace length, mCPI, iCPI (steady-state replay). *)

val table8 : results -> Protolat_util.Table.t
(** Latency-improvement decomposition between adjacent versions. *)

val table9 : results -> Protolat_util.Table.t
(** Outlining effectiveness: unused i-cache share and static path size. *)

val figure1 : unit -> string
(** The two protocol stacks. *)

val figure2 : unit -> string
(** i-cache footprint maps: STD vs OUT vs CLO (TCP/IP). *)

val map_traversal : unit -> Protolat_util.Table.t
(** §2.2.1: non-empty-bucket-list traversal vs full-table scan, by
    occupancy (operation counts; wall-clock lives in the bench). *)

val micro_positioning : unit -> Protolat_util.Table.t
(** §3.2: micro-positioning vs bipartite layout. *)

val layout_candidates : Config.layout list
(** Every placement strategy, in sweep order. *)

val layout_sweep_base :
  ?config:Config.t -> ?stack:Engine.stack_kind -> unit -> Engine.run_result
(** The base measurement run an incremental {!layout_sweep} starts from
    (the config's own layout).  Expose it so a caller timing sweep
    mechanics can hoist the shared base protocol simulation out of the
    timed region and pass it back via [?base]. *)

val layout_sweep :
  ?config:Config.t ->
  ?stack:Engine.stack_kind ->
  ?layouts:Config.layout list ->
  ?base:Engine.run_result ->
  incremental:bool ->
  unit ->
  (Config.layout * Protolat_machine.Perf.report
  * Protolat_machine.Perf.report) list
(** Cold and steady replay reports for each candidate placement of the
    same code units ([(layout, cold, steady)]).  [~incremental:true]
    captures one base run and re-evaluates only the i-side mapping per
    candidate: instruction addresses are rewritten with
    {!Protolat_layout.Image.pc_map}, the basic-block segmentation is
    re-bound with {!Protolat_machine.Blockcache.rebind}, and both the cold
    and warm replays go through the block cache ({!Perf.cold_bc} /
    {!Perf.steady_bc}).  [~incremental:false] runs the full protocol
    simulation per layout.  Both produce bit-identical reports; the
    incremental sweep is several times faster.  [?base] supplies the base
    run (from {!layout_sweep_base} with the same [config]/[stack]) instead
    of computing it; only the incremental path uses it. *)

val layout_sweep_table : ?incremental:bool -> unit -> Protolat_util.Table.t
(** {!layout_sweep} as a printed table (default incremental). *)

val layout_search :
  ?budget:int ->
  ?seeds:int ->
  ?geometries:int list ->
  ?jobs:int ->
  unit ->
  Protolat_util.Table.t
(** {!Layoutsearch.run} as a printed table: automated search vs the best
    hand-picked layout per stack x geometry cell, with candidates/sec.
    Defaults are the quick configuration (240 evaluations, 1 restart,
    8 KB geometry only); [protolat search] exposes the full matrix. *)

val throughput : unit -> Protolat_util.Table.t
(** §4.1: the techniques do not hurt throughput (the wire is the
    bottleneck); §2.2.5: the instruction-count changes reduce CPU
    utilization even when they cannot reduce latency. *)

val dec_unix_mcpi : unit -> Protolat_util.Table.t
(** §5: mCPI of a production-style (original-options) stack vs the
    optimally configured system. *)

val fault_injection : unit -> Protolat_util.Table.t
(** Seeded {!Protolat_netsim.Fault} schedules under the fully metered
    engine (ALL configuration): mean roundtrip latency, retransmissions,
    and how many of the soak-tracked outlined cold blocks each schedule
    drives.  Quantifies what the outlined error paths cost when they do
    run (S2.2.3). *)

val mflow_scaling :
  ?flow_counts:int list -> ?seeds:int -> ?jobs:int -> unit -> Protolat_util.Table.t
(** Multi-flow scaling (extra experiment): latency percentiles and
    demux-map statistics as the concurrent-flow count grows past what the
    one-entry map cache covers (defaults: 1/8/64/256 flows, 4 seeds). *)

val chaos_degradation :
  ?intensities:int list -> ?seeds:int -> ?jobs:int -> unit -> Protolat_util.Table.t
(** Degradation under host-lifecycle chaos (extra experiment): completed
    exchanges, reconnects, goodput and latency percentiles of the
    {!Chaos} at-most-once workload as the per-horizon fault-incident
    count grows (defaults: intensities 0/1/2/4/8, 2 seeds).  Any
    invariant violation appears in the last column — a correct stack
    shows "none" throughout. *)

val incast_latency :
  ?fan_ins:int list -> ?seeds:int -> ?jobs:int -> unit -> Protolat_util.Table.t
(** Incast over the switched star fabric (extra experiment): completion
    latency percentiles, switch queue drops and retransmissions as the
    client fan-in degree grows past what the server's access link and the
    switch's bounded egress queue absorb (defaults: fan-in 2..64, 1
    seed).  [jobs] parallelizes the per-cell host shards. *)
