(** Multi-flow traffic engine: N concurrent flows with connection churn
    through one shared host pair, reported with latency percentiles and
    demux-map statistics.

    The paper's §2.2 demux optimizations (one-entry map cache with the
    conditionally inlined hit test, the lazily maintained non-empty-bucket
    list) are only interesting when many connections are live: with one
    flow the cache always hits and traversal is trivial.  This engine makes
    that regime measurable — the cache hit rate falls and chain compares
    and traversal scans grow as the active-flow count exceeds what the
    single-entry cache can cover.

    Cells run the protocol stacks standalone (no machine model), like
    {!Soak}: a cell costs milliseconds, and sweeps parallelize over
    {!Protolat_util.Dpool} with bit-identical reports at any job count. *)

module Util = Protolat_util
module Obs = Protolat_obs

(** How each flow generates requests. *)
type arrival =
  | Closed_loop of { think_us : float }
      (** next request after the previous response plus an exponential
          think time with the given mean (0 = back-to-back) *)
  | Open_loop of { interarrival_us : float }
      (** Poisson arrivals with the given mean interarrival, regardless of
          outstanding responses *)

type workload = {
  arrival : arrival;
  req_bytes : int;
  resp_bytes : int;
  requests_per_flow : int;
  conn_lifetime : int option;
      (** mean request/response exchanges a TCP connection carries before
          it is torn down and reopened (drawn per connection, uniform in
          [\[1, 2n-1\]]); [None] = one connection per flow, no churn *)
}

val default_workload : workload
(** Closed loop with 200 µs mean think time, 64 B requests, 256 B
    responses, 32 exchanges per flow, connection lifetime 8. *)

val arrival_name : arrival -> string

(** Demux-map counters of the server's connection map (TCP PCB map or CHAN
    channel map) accumulated over the cell. *)
type map_stats = {
  resolves : int;
  cache_hits : int;
  key_compares : int;
  buckets_scanned : int;
  nonempty : int;
}

val hit_rate : map_stats -> float
(** Fraction of resolves answered by the one-entry cache (1.0 when no
    resolves happened).  Note that when the conditionally inlined cache
    test is enabled ({!Protolat_tcpip.Opts.map_cache_inline}), an inline
    miss falls into the general function, which resolves through the
    just-refilled cache — so a true miss counts two resolves and one hit
    and the reported rate is compressed toward [1/(2-h)] of the true
    rate [h].  Disable the inline test to measure raw demux locality. *)

val compares_per_resolve : map_stats -> float

(** One cell: [flows] concurrent flows at one seed. *)
type cell = {
  stack : Engine.stack_kind;
  flows : int;
  seed : int;
  requests : int;  (** completed request/response exchanges *)
  conns : int;  (** TCP connections opened (channel-map size for RPC) *)
  reconnects : int;
      (** connections the chaos supervisor force-reopened after a host
          crash stranded their flow (0 without chaos) *)
  retransmits : int;
  lat : Util.Stats.Hist.digest;
      (** aggregate latency over every exchange: quantile digest of the
          per-flow streaming histograms merged in flow order (exact
          counts; p50–p99.99 accurate to one log-bucket) *)
  per_flow : Util.Stats.Hist.digest array;  (** indexed by flow id *)
  server_map : map_stats;
  timer_high_water : int;
      (** peak simultaneously pending timer events on the worse host *)
  sweeps : int;  (** PCB housekeeping traversals run (TCP only) *)
  drained : bool;
      (** teardown left no session, no pending timer, no sim event *)
  violations : string list;
      (** {!Invariant.conservation} findings against the cell's metrics
          at quiesce, rendered; empty for a sound cell *)
  metrics : Obs.Metrics.t;
      (** the pair's unified registry, including the [mflow.*] scope
          (latency histogram, request/connection counters, hit-rate and
          timer-occupancy gauges) *)
}

val run_cell :
  ?workload:workload ->
  ?chaos:Chaos.schedule ->
  flows:int ->
  Engine.Spec.t ->
  cell
(** Run one cell.  The spec supplies the stack, the protocol configuration
    (whose {!Config.t} opts control e.g. the inlined map-cache test) and
    the seed; machine-model fields ([rounds], [params], ...) are unused —
    cells run standalone.

    [chaos] injects a host-lifecycle fault schedule (see {!Chaos}): hosts
    crash and restart mid-run, the server's listener and sweep timer are
    rebuilt on restart, and a crash-proof supervisor reconnects stranded
    flows and resends their cleared in-flight requests (counted in
    [reconnects]).  Chaos requires the TCP stack and a closed-loop
    workload.
    @raise Failure if flows do not finish before the internal deadline or
    a handshake fails (the message names each stuck flow with its
    connection state and in-flight count).
    @raise Invalid_argument for chaos on RPC or an open-loop workload. *)

type report = {
  rstack : Engine.stack_kind;
  rtopology : Protolat_netsim.Topology.t;
      (** the 2-host wiring every cell ran over (from the base spec) *)
  flow_counts : int list;
  seeds : int;
  workload : workload;
  cells : cell list;  (** flow counts major, seeds minor *)
}

val seed_for : int -> int -> int
(** [seed_for base i]: seed of the [i]-th repetition — a stream distinct
    from {!Engine.sample_seed} and the soak's. *)

val sweep :
  ?flow_counts:int list ->
  ?seeds:int ->
  ?jobs:int ->
  ?workload:workload ->
  Engine.Spec.t ->
  report
(** Run [flow_counts × seeds] cells (defaults: flows 1/8/64, 2 seeds),
    fanned over a domain pool; the report is bit-identical at any [jobs]. *)

val summary : report -> (int * (float * float * float * float)) list
(** Per flow count, averaged over seeds:
    [(flows, (p50_us, p99_us, hit_rate, key_compares_per_resolve))]. *)

val render : report -> string

val passed : report -> bool
(** Every cell drained cleanly and broke no conservation law. *)

val to_json : report -> string
(** Deterministic JSON document (carries ["schema_version"]). *)
