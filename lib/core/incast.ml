(* N-client incast over the switched star fabric, sharded across domains.

   The first workload that needs more hosts than one simulator comfortably
   holds: [fan_in] TCP clients behind a store-and-forward switch fire
   synchronized request bursts at one server, and the server's access link
   plus the switch's bounded egress queue produce the classic incast tail.

   Hosts shard across domains: shard 0 owns the switch and the server,
   client shards own [fan_in / n] clients each.  Every client's access
   segment is split into two half-links — the client half on its shard's
   simulator, the switch half on shard 0's — joined by the
   {!Ns.Ether.Link.set_remote}/{!Ns.Ether.Link.inject} exchange.  Shards
   advance in lock-step epochs bounded by the minimum cross-shard wire
   latency, and cross-shard frames are injected in fixed shard order at
   every barrier, so the whole run — and its digest — is bit-identical at
   any [jobs] count, including 1. *)

module Ns = Protolat_netsim
module Obs = Protolat_obs
module T = Protolat_tcpip
module Util = Protolat_util

(* epoch barrier: no frame crosses shards in less than the smallest
   frame's serialization plus propagation, so an epoch that ends at
   [min next event + delta_us] can never miss a cross-shard arrival *)
let propagation_us = 0.3

let delta_us = Ns.Ether.tx_time_us 0 +. propagation_us

let server_port = 7000

let client_port = 10_000

type workload = {
  req_bytes : int;
  resp_bytes : int;
  requests_per_client : int;
  stagger_us : float;  (** connect spacing; the burst itself is synchronized *)
  switch_latency_us : float;
  port_queue_frames : int;
  horizon_us : float;
}

let default_workload =
  { req_bytes = 64;
    resp_bytes = 512;
    requests_per_client = 4;
    stagger_us = 50.0;
    switch_latency_us = 5.0;
    port_queue_frames = 32;
    horizon_us = 2_000_000.0 }

(* client shards beyond the hub: fixed by fan-in alone (never by [jobs]),
   because the shard layout determines per-shard event interleaving *)
let client_shards fan_in = min fan_in 8

(* global host index: server 0, client k at 1+k — addressing reuses the
   stack's pure per-index functions so the static forwarding tables and
   every route agree without coordination *)
let mac_of = T.Stack.mac_of

let ip_of = T.Stack.ip_of

type client = {
  g : int;  (** global host index *)
  host : T.Stack.host;
  link : Ns.Ether.Link.t;  (** client half of the access segment *)
  hist : Util.Stats.Hist.t;
  mutable session : T.Tcp.session option;
  mutable started : bool;
  mutable sent : int;
  mutable completed : int;
  mutable resp_acc : int;
  mutable send_t : float;
}

(* a cross-shard frame parked at the barrier: [link]/[station] name the
   receiving half-link, [at] the absolute arrival time *)
type parked = {
  p_link : Ns.Ether.Link.t;
  p_station : int;
  p_at : float;
  p_frame : Ns.Ether.frame;
}

type shard = {
  sim : Ns.Sim.t;
  metrics : Obs.Metrics.t;
  outbox : parked Queue.t;
      (* filled only while this shard's simulator runs (single domain),
         drained only at the barrier (coordinator) *)
}

type cell = {
  fan_in : int;
  seed : int;
  completed : int;
  total : int;
  lat : Util.Stats.Hist.digest;  (** per-exchange completion latency *)
  retransmits : int;
  queue_drops : int;
  queue_peak : int;
  epochs : int;
  end_us : float;
  drained : bool;
  violations : string list;
  digest : string;
}

let run_cell ?(wl = default_workload) ?(jobs = 1) ~fan_in ~seed () =
  if fan_in < 1 || fan_in > 1024 then
    invalid_arg "Incast.run_cell: fan_in must be in 1..1024";
  let nshards = client_shards fan_in in
  let mk_shard () =
    { sim = Ns.Sim.create ();
      metrics = Obs.Metrics.create ();
      outbox = Queue.create () }
  in
  let hub = mk_shard () in
  let shards = Array.init nshards (fun _ -> mk_shard ()) in
  let shard_of k = shards.(k mod nshards) in
  let opts = T.Opts.improved in
  (* --- hub: switch, server, switch-side half-links ------------------- *)
  let switch =
    Ns.Switch.create hub.sim ~ports:(fan_in + 1)
      ~latency_us:wl.switch_latency_us ~queue_frames:wl.port_queue_frames
      ~metrics:hub.metrics ()
  in
  let server_link =
    Ns.Ether.Link.create hub.sim ~propagation_us
      ~metrics:(Obs.Metrics.scoped hub.metrics "link0")
      ()
  in
  let server =
    T.Stack.make_host hub.sim server_link ~station:0 ~mac:(mac_of 0)
      ~ip_addr:(ip_of 0) ~opts
      ~metrics:(Obs.Metrics.scoped hub.metrics "server")
      ~simmem_base:0x1010_0000 ()
  in
  Ns.Switch.attach switch ~port:0 ~station:1 server_link;
  Ns.Switch.add_static switch ~mac:(mac_of 0) ~port:0;
  (* switch halves: station 1 faces the switch, station 0 is the remote
     client; egress toward a client parks the frame in the hub outbox *)
  let b_links =
    Array.init fan_in (fun k ->
        let g = 1 + k in
        let b =
          Ns.Ether.Link.create hub.sim ~propagation_us
            ~metrics:(Obs.Metrics.scoped hub.metrics (Printf.sprintf "port%d" g))
            ()
        in
        Ns.Switch.attach switch ~port:g ~station:1 b;
        Ns.Switch.add_static switch ~mac:(mac_of g) ~port:g;
        b)
  in
  (* --- client shards ------------------------------------------------- *)
  let rng = Util.Rng.create seed in
  let jitter = Array.init fan_in (fun _ -> Util.Rng.float rng wl.stagger_us) in
  let clients =
    Array.init fan_in (fun k ->
        let g = 1 + k in
        let sh = shard_of k in
        let a =
          Ns.Ether.Link.create sh.sim ~propagation_us
            ~metrics:(Obs.Metrics.scoped sh.metrics (Printf.sprintf "link%d" g))
            ()
        in
        let host =
          T.Stack.make_host sh.sim a ~station:0 ~mac:(mac_of g)
            ~ip_addr:(ip_of g) ~opts
            ~metrics:(Obs.Metrics.scoped sh.metrics (Printf.sprintf "h%d" g))
            ~simmem_base:(0x1010_0000 + (g * 0x0100_0000))
            ()
        in
        T.Vnet.add_route host.T.Stack.vnet ~ip:(ip_of 0) ~mac:(mac_of 0);
        T.Vnet.add_route host.T.Stack.vnet ~ip:(ip_of g) ~mac:(mac_of g);
        { g;
          host;
          link = a;
          hist = Util.Stats.Hist.create ();
          session = None;
          started = false;
          sent = 0;
          completed = 0;
          resp_acc = 0;
          send_t = 0.0 })
  in
  Array.iteri
    (fun k c ->
      T.Vnet.add_route server.T.Stack.vnet ~ip:(ip_of c.g) ~mac:(mac_of c.g);
      ignore k)
    clients;
  T.Vnet.add_route server.T.Stack.vnet ~ip:(ip_of 0) ~mac:(mac_of 0);
  (* --- cross-shard plumbing ------------------------------------------ *)
  Array.iteri
    (fun k c ->
      let b = b_links.(k) in
      let sh = shard_of k in
      (* client -> switch: leaves the client half at station 1 *)
      Ns.Ether.Link.set_remote c.link ~station:1 (fun ~at frame ->
          Queue.push
            { p_link = b; p_station = 1; p_at = at; p_frame = frame }
            sh.outbox);
      (* switch -> client: leaves the switch half at station 0 *)
      Ns.Ether.Link.set_remote b ~station:0 (fun ~at frame ->
          Queue.push
            { p_link = c.link; p_station = 0; p_at = at; p_frame = frame }
            hub.outbox))
    clients;
  (* --- server application: byte-counting echo ------------------------ *)
  let srv_acc : (string, int ref) Hashtbl.t = Hashtbl.create 64 in
  let resp_payload = Bytes.make (max 1 wl.resp_bytes) 'r' in
  let req_payload = Bytes.make (max 1 wl.req_bytes) 'q' in
  T.Tcp.listen server.T.Stack.tcp ~port:server_port ~receive:(fun s data ->
      T.Tcp.set_nodelay s true;
      let key = T.Tcb.key_of (T.Tcp.tcb s) in
      let acc =
        match Hashtbl.find_opt srv_acc key with
        | Some r -> r
        | None ->
          let r = ref 0 in
          Hashtbl.replace srv_acc key r;
          r
      in
      acc := !acc + Bytes.length data;
      while !acc >= wl.req_bytes do
        acc := !acc - wl.req_bytes;
        T.Tcp.send s resp_payload
      done);
  (* --- client application: synchronized burst, then closed loop ------ *)
  let go_us = (wl.stagger_us *. float_of_int (fan_in + 1)) +. 5_000.0 in
  let clients_done = ref 0 in
  let send_next c =
    match c.session with
    | Some s when T.Tcp.state s = T.Tcb.Established ->
      c.send_t <- Ns.Sim.now (shard_of (c.g - 1)).sim;
      c.sent <- c.sent + 1;
      T.Tcp.send s req_payload
    | _ -> ()
  in
  let on_receive c _s data =
    c.resp_acc <- c.resp_acc + Bytes.length data;
    while c.resp_acc >= wl.resp_bytes do
      c.resp_acc <- c.resp_acc - wl.resp_bytes;
      let now = Ns.Sim.now (shard_of (c.g - 1)).sim in
      Util.Stats.Hist.add c.hist (now -. c.send_t);
      c.completed <- c.completed + 1;
      if c.completed < wl.requests_per_client then send_next c
      else if c.completed = wl.requests_per_client then
        incr clients_done
    done
  in
  Array.iteri
    (fun k c ->
      let env = c.host.T.Stack.env in
      let rec poll_start () =
        let now = Ns.Sim.now (shard_of k).sim in
        match c.session with
        | Some s
          when T.Tcp.state s = T.Tcb.Established
               && now >= go_us && not c.started ->
          c.started <- true;
          send_next c
        | _ ->
          if not c.started then
            ignore (Ns.Host_env.timeout env ~delay:100.0 poll_start)
      in
      let start_at = (wl.stagger_us *. float_of_int k) +. jitter.(k) in
      ignore
        (Ns.Host_env.timeout env ~delay:start_at (fun () ->
             c.session <-
               Some
                 (T.Tcp.connect c.host.T.Stack.tcp ~local_port:client_port
                    ~remote_ip:(ip_of 0) ~remote_port:server_port
                    ~receive:(on_receive c));
             poll_start ())))
    clients;
  (* --- the epoch engine ---------------------------------------------- *)
  let all = Array.append [| hub |] shards in
  let total = fan_in * wl.requests_per_client in
  let epochs = ref 0 in
  let drain_barrier () =
    (* fixed shard order at every barrier keeps injection deterministic *)
    Array.iter
      (fun sh ->
        while not (Queue.is_empty sh.outbox) do
          let p = Queue.pop sh.outbox in
          Ns.Ether.Link.inject p.p_link ~station:p.p_station ~at:p.p_at
            p.p_frame
        done)
      all
  in
  let next_event () =
    Array.fold_left
      (fun acc sh ->
        match (Ns.Sim.next_at sh.sim, acc) with
        | None, a -> a
        | Some t, None -> Some t
        | Some t, Some a -> Some (Float.min t a))
      None all
  in
  let rec loop () =
    if !clients_done < fan_in then
      match next_event () with
      | None -> ()
      | Some t when t > wl.horizon_us -> ()
      | Some t ->
        incr epochs;
        let t1 = t +. delta_us in
        let busy, idle =
          Array.to_list all
          |> List.partition (fun sh ->
                 match Ns.Sim.next_at sh.sim with
                 | Some e -> e <= t1
                 | None -> false)
        in
        (* idle shards just move their clocks; busy ones do real work,
           in parallel when asked to.  Shards share nothing mid-epoch,
           so the result cannot depend on [jobs]. *)
        List.iter (fun sh -> ignore (Ns.Sim.run ~until:t1 sh.sim)) idle;
        (match busy with
        | [] -> ()
        | [ sh ] -> ignore (Ns.Sim.run ~until:t1 sh.sim)
        | _ when jobs <= 1 ->
          List.iter (fun sh -> ignore (Ns.Sim.run ~until:t1 sh.sim)) busy
        | _ ->
          ignore
            (Util.Dpool.run ~jobs
               (List.map
                  (fun sh ->
                    fun () -> ignore (Ns.Sim.run ~until:t1 sh.sim))
                  busy)));
        drain_barrier ();
        loop ()
  in
  loop ();
  (* --- audit + digest ------------------------------------------------ *)
  let end_us =
    Array.fold_left (fun a sh -> Float.max a (Ns.Sim.now sh.sim)) 0.0 all
  in
  let merged_dump =
    List.concat_map (fun sh -> Obs.Metrics.dump sh.metrics) (Array.to_list all)
  in
  let inv = Invariant.create () in
  Invariant.conservation_dump inv ~at_us:end_us merged_dump;
  let completed =
    Array.fold_left (fun a (c : client) -> a + c.completed) 0 clients
  in
  let lat =
    Array.fold_left
      (fun acc c -> Util.Stats.Hist.merge acc c.hist)
      (Util.Stats.Hist.create ()) clients
    |> Util.Stats.Hist.digest
  in
  let retransmits =
    Array.fold_left (fun a c -> a + T.Tcp.retransmits c.host.T.Stack.tcp) 0
      clients
    + T.Tcp.retransmits server.T.Stack.tcp
  in
  let b = Buffer.create 1024 in
  Printf.bprintf b "incast fan_in=%d seed=%d completed=%d/%d end=%.3f\n"
    fan_in seed completed total end_us;
  Array.iter
    (fun c ->
      Printf.bprintf b "h%d sent=%d completed=%d n=%d\n" c.g c.sent
        c.completed
        (Util.Stats.Hist.count c.hist))
    clients;
  Printf.bprintf b "lat p50=%.3f p90=%.3f p99=%.3f p999=%.3f max=%.3f n=%d\n"
    lat.Util.Stats.Hist.p50 lat.Util.Stats.Hist.p90 lat.Util.Stats.Hist.p99
    lat.Util.Stats.Hist.p999 lat.Util.Stats.Hist.max lat.Util.Stats.Hist.n;
  List.iter
    (fun (name, sample) ->
      match sample with
      | Obs.Metrics.Counter n -> Printf.bprintf b "%s=%d\n" name n
      | _ -> ())
    merged_dump;
  { fan_in;
    seed;
    completed;
    total;
    lat;
    retransmits;
    queue_drops = Ns.Switch.queue_drops switch;
    queue_peak = Ns.Switch.queue_peak switch;
    epochs = !epochs;
    end_us;
    drained = completed = total;
    violations = List.map Invariant.render_violation (Invariant.violations inv);
    digest = Digest.to_hex (Digest.string (Buffer.contents b)) }

(* ----- sweep --------------------------------------------------------- *)

type report = {
  fan_ins : int list;
  seeds : int;
  wl : workload;
  cells : cell list;  (** fan-in major, seed minor *)
}

(* distinct seed stream from Engine/Soak/Mflow/Chaos *)
let seed_for base i = base + (i * 4241)

let sweep ?(wl = default_workload) ?(fan_ins = [ 2; 4; 8; 16; 32; 64 ])
    ?(seeds = 1) ?(jobs = 1) ~seed () =
  if seeds <= 0 then invalid_arg "Incast.sweep: seeds must be positive";
  (* cells run sequentially: the parallelism budget goes to each cell's
     shard fan-out, which is where the hosts are *)
  let cells =
    List.concat_map
      (fun fan_in ->
        List.init seeds (fun i ->
            run_cell ~wl ~jobs ~fan_in ~seed:(seed_for seed i) ()))
      fan_ins
  in
  { fan_ins; seeds; wl; cells }

let passed t =
  List.for_all (fun c -> c.drained && c.violations = []) t.cells

let render t =
  let tbl =
    Util.Table.create
      ~title:
        (Printf.sprintf
           "Incast: completion latency vs fan-in (%dB req, %dB resp, %d \
            req/client)"
           t.wl.req_bytes t.wl.resp_bytes t.wl.requests_per_client)
      ~headers:
        [ "Fan-in"; "seed"; "done"; "p50 [us]"; "p90"; "p99"; "p99.9";
          "max"; "rexmt"; "qdrops"; "qpeak"; "epochs"; "ok" ]
  in
  let f1 = Util.Table.cell_f ~digits:1 in
  List.iter
    (fun c ->
      Util.Table.add_row tbl
        [ string_of_int c.fan_in; string_of_int c.seed;
          Printf.sprintf "%d/%d" c.completed c.total;
          f1 c.lat.Util.Stats.Hist.p50; f1 c.lat.Util.Stats.Hist.p90;
          f1 c.lat.Util.Stats.Hist.p99; f1 c.lat.Util.Stats.Hist.p999;
          f1 c.lat.Util.Stats.Hist.max; string_of_int c.retransmits;
          string_of_int c.queue_drops; string_of_int c.queue_peak;
          string_of_int c.epochs;
          (if c.drained && c.violations = [] then "yes" else "NO") ])
    t.cells;
  let b = Buffer.create 256 in
  Buffer.add_string b (Util.Table.render tbl);
  List.iter
    (fun c ->
      List.iter
        (fun v ->
          Buffer.add_string b
            (Printf.sprintf "violation (fan_in=%d seed=%d): %s\n" c.fan_in
               c.seed v))
        c.violations)
    t.cells;
  Buffer.contents b

let to_json t =
  let b = Buffer.create 2048 in
  Buffer.add_string b "{\n";
  Buffer.add_string b
    (Printf.sprintf "  \"schema_version\": %d,\n" Obs.Json.schema_version);
  Buffer.add_string b "  \"kind\": \"incast\",\n";
  Buffer.add_string b
    (Printf.sprintf "  \"topology\": \"star:%d\",\n"
       (match t.fan_ins with
       | [] -> 1
       | fs -> 1 + List.fold_left max 0 fs));
  Buffer.add_string b
    (Printf.sprintf
       "  \"workload\": {\"req_bytes\": %d, \"resp_bytes\": %d, \
        \"requests_per_client\": %d, \"stagger_us\": %.1f, \
        \"switch_latency_us\": %.1f, \"port_queue_frames\": %d},\n"
       t.wl.req_bytes t.wl.resp_bytes t.wl.requests_per_client
       t.wl.stagger_us t.wl.switch_latency_us t.wl.port_queue_frames);
  Buffer.add_string b
    (Printf.sprintf "  \"seeds\": %d,\n  \"fan_ins\": [%s],\n" t.seeds
       (String.concat ", " (List.map string_of_int t.fan_ins)));
  Buffer.add_string b "  \"cells\": [\n";
  Buffer.add_string b
    (String.concat ",\n"
       (List.map
          (fun c ->
            Printf.sprintf
              "    {\"fan_in\": %d, \"seed\": %d, \"completed\": %d, \
               \"total\": %d, \"p50_us\": %.3f, \"p90_us\": %.3f, \
               \"p99_us\": %.3f, \"p999_us\": %.3f, \"max_us\": %.3f, \
               \"retransmits\": %d, \"queue_drops\": %d, \"queue_peak\": \
               %d, \"epochs\": %d, \"end_us\": %.1f, \"drained\": %b, \
               \"digest\": \"%s\"}"
              c.fan_in c.seed c.completed c.total c.lat.Util.Stats.Hist.p50
              c.lat.Util.Stats.Hist.p90 c.lat.Util.Stats.Hist.p99
              c.lat.Util.Stats.Hist.p999 c.lat.Util.Stats.Hist.max
              c.retransmits c.queue_drops c.queue_peak c.epochs c.end_us
              c.drained c.digest)
          t.cells));
  Buffer.add_string b "\n  ]\n}\n";
  Buffer.contents b
