(** Latency-provenance reports ([protolat spans]).

    Runs one configuration with the {!Protolat_obs.Span} ledger enabled
    under each candidate code layout, extracts the per-message stage
    spans, and rolls them up into a per-stage latency budget whose
    columns answer the paper's motivating question — {e where} does a
    roundtrip spend its time, and how does code placement move it — with
    the conservation guarantee that every message's stage durations fold
    bit-exactly to its measured RTT.

    {!check} enforces that guarantee ({!Protolat_obs.Span.conserved})
    against every collected layout. *)

module Obs = Protolat_obs

type cell = {
  layout : Config.layout;
  run : Engine.run_result;
  msgs : Obs.Span.message array;
  budget : Obs.Span.budget;
}

type t = {
  stack : Engine.stack_kind;
  version : Config.version;
  topology : Protolat_netsim.Topology.t;
  seed : int;
  rounds : int;
  cells : cell list;  (** one per layout, in request order *)
}

val default_layouts : Config.layout list
(** The layout-sweep candidate set (bipartite, micro, linear, link-order,
    pessimal). *)

val collect_one :
  ?topology:Protolat_netsim.Topology.t ->
  ?seed:int ->
  ?rounds:int ->
  ?fault:Protolat_netsim.Fault.spec ->
  stack:Engine.stack_kind ->
  version:Config.version ->
  layout:Config.layout ->
  unit ->
  cell
(** One spans-enabled measurement run under the given layout. *)

val collect :
  ?topology:Protolat_netsim.Topology.t ->
  ?seed:int ->
  ?rounds:int ->
  ?layouts:Config.layout list ->
  ?fault:Protolat_netsim.Fault.spec ->
  ?jobs:int ->
  stack:Engine.stack_kind ->
  version:Config.version ->
  unit ->
  t
(** One {!collect_one} per layout (default {!default_layouts}), fanned
    over a domain pool; results are identical at any job count. *)

val check : t -> (unit, string) result
(** The conservation law for every layout: per message, the stage-duration
    fold and the recorded total must equal the engine's measured RTT
    bit-exactly.  Violations come back one per line, tagged with the
    layout name. *)

val render : t -> string
(** Two text tables: per-stage mean µs/roundtrip (with share of RTT) per
    layout, and the same rolled up per host. *)

val to_json : t -> string
(** Deterministic JSON document: schema version, stage/host name tables,
    and per-layout budgets ([stage_mean_us], [host_stage_us], totals,
    conservation verdict). *)

val perfetto : t -> string
(** The collected span ledgers as a Perfetto trace-event document — one
    process per layout, per-host threads of stage slices, flow arrows
    tying each wire hop's send span to its receive span. *)
