(** Deterministic fault-injection soak harness.

    Runs TCP and RPC/BLAST transfers standalone (no machine model, so a
    cell costs milliseconds) under seeded {!Protolat_netsim.Fault} plans
    across a matrix of scenarios × fault schedules × seeds, and asserts
    end-to-end robustness invariants: payloads arrive intact and in order,
    corrupted frames are rejected by checksum, retransmit/NACK counters
    are consistent with the injected faults, and every host's event queue
    drains (no leaked timers).  A {!Cover} meter records which outlined
    cold blocks ({!Protolat_xkernel.Meter.cold}) actually fired, so the
    soak doubles as coverage proof for the error paths the paper outlines
    in §2.2.3 (the blocks are modeled as rarely-executed; this harness is
    what makes "rarely" more than "never").

    The whole matrix is deterministic: the same seeds produce a
    bit-identical {!report} digest at any [jobs] count (the per-cell tasks
    are independent and reassembled in submission order). *)

module Xk = Protolat_xkernel
module Ns = Protolat_netsim

(** Cold-block coverage accumulator: counts, per (function, block), how
    often the guard was reached and how often the cold path triggered. *)
module Cover : sig
  type t

  val create : unit -> t

  val meter : t -> Xk.Meter.t
  (** A meter that records cold-block reach/trigger counts and discards
      everything else.  Install standalone (as a host's meter) or compose
      with the engine meter via {!Engine.run}'s [extra_meter]. *)

  val merge : into:t -> t -> unit

  val reached : t -> func:string -> block:string -> int

  val triggered : t -> func:string -> block:string -> int
end

val tracked_cold_blocks : (string * string) list
(** The curated (function, block) list the coverage gate is measured
    against: every cold block that a fault plan or protocol edge case can
    actually trigger.  Decorative guards whose predicate is hardwired
    false in this model (e.g. ["udiv"/"divzero"]) are excluded. *)

type schedule = {
  sname : string;
  sspec : Ns.Fault.spec;
}

val schedules : schedule list
(** The fault schedules of the matrix: [clean], [loss] (20% independent),
    [burst] (Gilbert–Elliott), [corrupt], [dup], [reorder] (+jitter),
    [mixed], and [device] (LANCE tx stalls + rx overruns). *)

type cell = {
  scenario : string;
  schedule : string;
  seed : int;
  failures : string list;  (** empty = every invariant held *)
  counters : (string * int) list;  (** sorted by key *)
}

type report = {
  cells : cell list;
  cover : Cover.t;  (** merged across all cells *)
  covered : (string * string) list;  (** tracked blocks that triggered *)
  missing : (string * string) list;  (** tracked blocks that never did *)
  digest : string;  (** MD5 over the canonical cell + coverage text *)
}

val seed_for : int -> int
(** Seed of the [i]-th soak sample (distinct stream from
    {!Engine.sample_seed}). *)

val run :
  ?seeds:int ->
  ?jobs:int ->
  ?quick:bool ->
  ?topology:Protolat_netsim.Topology.t ->
  unit ->
  report
(** Run the matrix: [seeds] (default 4) seeds per randomized schedule
    (the [clean] schedule draws nothing and runs once), fanned across
    [jobs] domains.  [quick] shrinks transfer sizes and round counts for
    CI.  [topology] is the 2-host wiring every scenario pair runs over
    (default {!Protolat_netsim.Topology.pair}; [star:2]/[line:2] route
    the same traffic through the switched fabric). *)

val coverage_pct : report -> float

val passed : report -> bool
(** All cells passed and ≥ 90% of {!tracked_cold_blocks} triggered. *)

val render : report -> string
