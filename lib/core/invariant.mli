(** Invariant watchdog: a small registry of safety and liveness checks
    that harnesses ({!Chaos}, {!Soak}, {!Mflow}, {!Engine}) evaluate
    continuously during a run and once more at quiesce.

    A watchdog accumulates {e violations}: named, timestamped findings.
    Each name is recorded at most once (the first occurrence wins) so a
    continuously re-checked invariant that stays broken produces one
    violation, not thousands; the {e primary} violation — the first one
    observed — is what the schedule shrinker tries to re-reproduce.

    The canned {!conservation} check encodes the metrics conservation
    laws of the simulated network path as inequalities that are safe to
    evaluate mid-run, with frames still in flight:

    - wire: frames dropped ≤ frames sent (per [link] scope, summed);
    - devices: frames DMAed + rx overruns at all LANCEs ≤ frames put on
      the wire − frames dropped + injected duplications;
    - fault plans: per scope, every fault class fires at most once per
      frame drawn;
    - switches: per [switch] scope, frames leaving an egress port plus
      queue/unknown-destination/partition drops ≤ frames in plus flood
      copies (equality at quiesce);
    - TCP: per scope, fast retransmits ≤ total retransmits. *)

type violation = {
  name : string;  (** stable dotted identifier, e.g. ["at_most_once"] *)
  at_us : float;  (** simulated time of first observation *)
  detail : string;  (** human-readable specifics *)
}

type t

val create : unit -> t

val ok : t -> bool
(** No violation recorded. *)

val report : t -> at_us:float -> name:string -> detail:string -> unit
(** Record a violation.  Re-reports under an already recorded [name] are
    ignored: the first observation is the interesting one. *)

val check :
  t -> at_us:float -> name:string -> detail:(unit -> string) -> bool -> unit
(** [check t ~at_us ~name ~detail cond] reports a violation when [cond]
    is false.  [detail] is only forced on failure. *)

val violations : t -> violation list
(** In order of first observation. *)

val primary : t -> string option
(** Name of the first violation observed, if any. *)

val names : t -> string list
(** Violation names in order of first observation. *)

val conservation : t -> at_us:float -> Protolat_obs.Metrics.t -> unit
(** Evaluate the metrics conservation laws against a registry snapshot,
    reporting each broken law as a [conservation.*] violation. *)

val conservation_dump :
  t -> at_us:float -> (string * Protolat_obs.Metrics.sample) list -> unit
(** {!conservation} over an explicit dump — for audits that merge several
    registries first (e.g. the sharded incast fabric, whose hosts and
    switch live in per-domain registries). *)

val render_violation : violation -> string
(** ["name @ <t>us: detail"]. *)

val render : t -> string
(** All violations, one per line; ["ok"] when there are none. *)
