module Xk = Protolat_xkernel
module Ns = Protolat_netsim
module T = Protolat_tcpip
module R = Protolat_rpc
module Msg = Xk.Msg
module Obs = Protolat_obs

(* flatten the pair's unified metrics registry into a cell's counter list,
   so the soak digest and report cover every device/protocol counter the
   run accumulated (zero counters are omitted to keep cells compact) *)
let metrics_counters reg =
  List.filter_map
    (fun (name, s) ->
      match s with
      | Obs.Metrics.Counter v when v > 0 -> Some (name, v)
      | _ -> None)
    (Obs.Metrics.dump reg)

(* ----- cold-block coverage ------------------------------------------------ *)

module Cover = struct
  type counts = {
    mutable reached : int;
    mutable triggered : int;
  }

  type t = (string * string, counts) Hashtbl.t

  let create () : t = Hashtbl.create 64

  let slot t key =
    match Hashtbl.find_opt t key with
    | Some c -> c
    | None ->
      let c = { reached = 0; triggered = 0 } in
      Hashtbl.replace t key c;
      c

  let meter t =
    { Xk.Meter.null with
      Xk.Meter.cold =
        (fun ?reads:_ ?writes:_ ~triggered func block ->
          let c = slot t (func, block) in
          c.reached <- c.reached + 1;
          if triggered then c.triggered <- c.triggered + 1) }

  let merge ~into src =
    Hashtbl.iter
      (fun key c ->
        let d = slot into key in
        d.reached <- d.reached + c.reached;
        d.triggered <- d.triggered + c.triggered)
      src

  let reached t ~func ~block =
    match Hashtbl.find_opt t (func, block) with
    | Some c -> c.reached
    | None -> 0

  let triggered t ~func ~block =
    match Hashtbl.find_opt t (func, block) with
    | Some c -> c.triggered
    | None -> 0
end

(* Every cold block a fault plan or protocol edge case can actually fire.
   Guards whose predicate is hardwired false in this model (divzero,
   seqwrap, msg_prepare/grow, ...) are deliberately absent: they model
   paths the reproduced stacks cannot reach, so counting them would only
   dilute the gate. *)
let tracked_cold_blocks =
  [ (* TCP/IP stack *)
    ("eth_demux", "badtype");
    ("eth_push", "arp_miss");
    ("ip_demux", "frag_reass");
    ("ip_push", "fragment");
    ("ip_push", "noroute");
    ("lance_rx", "baddesc");
    ("lance_send", "ring_full");
    ("pool_put", "free");
    ("pool_put", "malloc");
    ("tcp_demux", "listen_path");
    ("tcp_input", "bad_cksum");
    ("tcp_input", "dupack");
    ("tcp_input", "flags_slow");
    ("tcp_input", "old_ack");
    ("tcp_input", "reass");
    ("tcp_output", "persist");
    ("tcp_output", "rexmt_path");
    ("tcp_send", "notestab");
    ("tcptest_recv", "done_check");
    ("tcptest_send", "init");
    (* RPC stack *)
    ("bid_demux", "bootmiss");
    ("bid_push", "newboot");
    ("blast_demux", "cksum_bad");
    ("blast_demux", "reass");
    ("blast_demux", "sendnack");
    ("blast_push", "dofrag");
    ("chan_call", "busy");
    ("chan_demux", "dupmsg");
    ("chan_demux", "oldseq");
    ("mselect_demux", "badclient");
    ("thread_signal", "nowaiter");
    ("vchan_call", "growpool");
    ("xrpctest_call", "init");
    ("xrpctest_cont", "done_check") ]

(* ----- fault schedules ---------------------------------------------------- *)

type schedule = {
  sname : string;
  sspec : Ns.Fault.spec;
}

let clean0 = Ns.Fault.clean

let schedules =
  [ { sname = "clean"; sspec = clean0 };
    { sname = "loss"; sspec = { clean0 with Ns.Fault.loss_pct = 20.0 } };
    { sname = "burst";
      sspec =
        { clean0 with
          Ns.Fault.ge =
            Some
              { Ns.Fault.p_good_to_bad = 0.05;
                p_bad_to_good = 0.3;
                loss_good_pct = 1.0;
                loss_bad_pct = 60.0 } } };
    { sname = "corrupt"; sspec = { clean0 with Ns.Fault.corrupt_pct = 15.0 } };
    { sname = "dup"; sspec = { clean0 with Ns.Fault.duplicate_pct = 20.0 } };
    { sname = "reorder";
      sspec =
        { clean0 with
          Ns.Fault.reorder_pct = 25.0;
          (* longer than the 2 ms delayed-ack spacing, so a held-back ack
             can land behind its successor and tcp_input/old_ack is
             reachable, not just reassembly *)
          reorder_delay_us = 6000.0;
          jitter_us = 50.0 } };
    { sname = "mixed";
      sspec =
        { clean0 with
          Ns.Fault.loss_pct = 8.0;
          corrupt_pct = 5.0;
          duplicate_pct = 8.0;
          reorder_pct = 10.0;
          reorder_delay_us = 300.0;
          jitter_us = 30.0 } };
    { sname = "device";
      sspec =
        { clean0 with
          Ns.Fault.tx_stall_pct = 30.0;
          tx_stall_us = 800.0;
          rx_overrun_pct = 10.0 } } ]

(* ----- shared scenario plumbing ------------------------------------------- *)

type cell = {
  scenario : string;
  schedule : string;
  seed : int;
  failures : string list;
  counters : (string * int) list;
}

let check failures what ok = if not ok then failures := what :: !failures

let pattern ~tag len =
  Bytes.init len (fun i -> Char.chr ((i * 131 + tag * 17 + len) land 0xFF))

(* Same seed derivation as Engine.install_fault, so a soak cell and a
   metered Engine.run with the same seed see the same fault sequence. *)
let install_faults ?metrics ~seed ~spec ~link ~client_lance ~server_lance () =
  let scoped name =
    match metrics with
    | Some m -> Some (Obs.Metrics.scoped m name)
    | None -> None
  in
  let lf = Ns.Fault.create ~seed:(seed lxor 0x5EED) ?metrics:(scoped "wire") spec in
  let clf =
    Ns.Fault.create ~seed:(seed lxor 0x5EED + 101)
      ?metrics:(scoped "client_dev") spec
  in
  let slf =
    Ns.Fault.create ~seed:(seed lxor 0x5EED + 211)
      ?metrics:(scoped "server_dev") spec
  in
  Ns.Ether.Link.set_fault link (Some lf);
  Ns.Lance.set_fault client_lance (Some clf);
  Ns.Lance.set_fault server_lance (Some slf);
  (lf, clf, slf)

let fault_counters (lf, clf, slf) =
  [ ("fault_frames", Ns.Fault.frames_seen lf);
    ("fault_drops", Ns.Fault.drops lf);
    ("fault_corruptions", Ns.Fault.corruptions lf);
    ("fault_duplications", Ns.Fault.duplications lf);
    ("fault_reorderings", Ns.Fault.reorderings lf);
    ("fault_tx_stalls", Ns.Fault.tx_stalls clf + Ns.Fault.tx_stalls slf);
    ("fault_rx_overruns", Ns.Fault.rx_overruns clf + Ns.Fault.rx_overruns slf)
  ]

(* Run the simulation in slices until [pred] holds or the simulated
   deadline passes; returns the final predicate value. *)
let pump sim ~deadline pred =
  let continue = ref (not (pred ())) in
  while !continue do
    if Ns.Sim.now sim >= deadline then continue := false
    else begin
      ignore
        (Ns.Sim.run ~until:(Float.min deadline (Ns.Sim.now sim +. 2_000.0)) sim);
      if pred () then continue := false
    end
  done;
  pred ()

(* Every timer in the stacks is bounded (retransmission, NACK and call
   caps), so running the queue dry terminates; afterwards no host may
   hold a registered-but-unfired timer. *)
let drain_check ?metrics failures sim envs =
  ignore (Ns.Sim.run sim);
  check failures "event queue drains" (Ns.Sim.pending sim = 0);
  List.iteri
    (fun i env ->
      let left = Xk.Event.pending env.Ns.Host_env.events in
      check failures
        (Printf.sprintf "host%d leaks no timers (%d left)" i left)
        (left = 0))
    envs;
  (* with the wire quiet, the run's counters must satisfy the metrics
     conservation laws — a broken law is a cell failure like any other *)
  match metrics with
  | None -> ()
  | Some m ->
    let iv = Invariant.create () in
    Invariant.conservation iv ~at_us:(Ns.Sim.now sim) m;
    List.iter
      (fun v -> check failures (Invariant.render_violation v) false)
      (Invariant.violations iv)

let is_clean spec = spec = Ns.Fault.clean

(* ----- scenarios ---------------------------------------------------------- *)

(* Bulk client->server transfer over TCP: payload must arrive intact and
   in order whatever the wire does; lost frames must be covered by
   retransmission, corrupted frames rejected by a checksum somewhere. *)
let tcp_transfer ~cover ~seed ~spec ~quick ~topology =
  let m = Cover.meter cover in
  let p =
    T.Stack.pair_of_net
      (T.Stack.make_net
         ~meter_for:(fun _ -> Some m)
         ~topology ())
  in
  let sim = p.T.Stack.sim in
  let failures = ref [] in
  let received = Buffer.create 8192 in
  let srv_session = ref None in
  T.Tcp.listen p.T.Stack.server.T.Stack.tcp ~port:9 ~receive:(fun s data ->
      if !srv_session = None then srv_session := Some s;
      Buffer.add_bytes received data);
  let cs =
    T.Tcp.connect p.T.Stack.client.T.Stack.tcp ~local_port:2048
      ~remote_ip:p.T.Stack.server.T.Stack.ip_addr ~remote_port:9
      ~receive:(fun _ _ -> ())
  in
  ignore (Ns.Sim.run ~until:(Ns.Sim.now sim +. 100_000.0) sim);
  if T.Tcp.state cs <> T.Tcb.Established then
    ([ "handshake did not complete" ], [])
  else begin
    T.Tcp.set_nodelay cs true;
    (* faults start only after the handshake, as in Engine.run *)
    let faults =
      install_faults ~metrics:p.T.Stack.metrics ~seed ~spec
        ~link:p.T.Stack.link
        ~client_lance:p.T.Stack.client.T.Stack.lance
        ~server_lance:p.T.Stack.server.T.Stack.lance ()
    in
    let sent = Buffer.create 8192 in
    let chunks = if quick then 30 else 90 in
    for i = 0 to chunks - 1 do
      let b = pattern ~tag:i (64 + ((i * 97) mod 900)) in
      Buffer.add_bytes sent b;
      T.Tcp.send cs b;
      ignore (Ns.Sim.run ~until:(Ns.Sim.now sim +. 300.0) sim)
    done;
    let total = Buffer.length sent in
    let delivered =
      pump sim
        ~deadline:(Ns.Sim.now sim +. 30.0e6)
        (fun () -> Buffer.length received >= total)
    in
    check failures "all bytes delivered" delivered;
    if delivered then
      check failures "payload intact and in order"
        (Bytes.equal (Buffer.to_bytes received) (Buffer.to_bytes sent));
    let ctcp = p.T.Stack.client.T.Stack.tcp in
    let stcp = p.T.Stack.server.T.Stack.tcp in
    let rexmt = T.Tcp.retransmits ctcp + T.Tcp.retransmits stcp in
    let lf, _, _ = faults in
    if is_clean spec then begin
      check failures "clean: no retransmissions" (rexmt = 0);
      check failures "clean: no wire drops"
        (Ns.Ether.Link.frames_dropped p.T.Stack.link = 0)
    end;
    (* independent loss without duplication must force retransmission *)
    if spec.Ns.Fault.duplicate_pct = 0.0 && Ns.Fault.drops lf >= 5 then
      check failures "loss recovered by retransmission" (rexmt > 0);
    if Ns.Fault.corruptions lf >= 5 then
      check failures "corruption rejected by a checksum"
        (Cover.triggered cover ~func:"tcp_input" ~block:"bad_cksum" > 0
        || T.Ip.packets_dropped p.T.Stack.client.T.Stack.ip
           + T.Ip.packets_dropped p.T.Stack.server.T.Stack.ip
           > 0);
    (* staggered bidirectional close: the client's FIN must arrive while
       the server is still Established (the FIN-processing slow path) *)
    T.Tcp.close cs;
    ignore (Ns.Sim.run ~until:(Ns.Sim.now sim +. 50_000.0) sim);
    (match !srv_session with
    | Some s -> T.Tcp.close s
    | None -> ());
    drain_check ~metrics:p.T.Stack.metrics failures sim
      [ p.T.Stack.client.T.Stack.env; p.T.Stack.server.T.Stack.env ];
    let counters =
      [ ("bytes", total);
        ("retransmits", rexmt);
        ("link_drops", Ns.Ether.Link.frames_dropped p.T.Stack.link);
        ("ring_full_events",
         Ns.Netdev.tx_ring_full_events p.T.Stack.client.T.Stack.netdev
         + Ns.Netdev.tx_ring_full_events p.T.Stack.server.T.Stack.netdev);
        ("rx_desc_errors",
         Ns.Netdev.rx_desc_errors p.T.Stack.client.T.Stack.netdev
         + Ns.Netdev.rx_desc_errors p.T.Stack.server.T.Stack.netdev) ]
      @ fault_counters faults
    in
    (List.rev !failures,
   List.sort compare (counters @ metrics_counters p.T.Stack.metrics))
  end

(* The paper's latency ping-pong under faults: every roundtrip must still
   complete (retransmission covers losses), and a fault-free wire must
   not retransmit at all. *)
let tcp_pingpong ~cover ~seed ~spec ~quick ~topology =
  let m = Cover.meter cover in
  let p =
    T.Stack.pair_of_net
      (T.Stack.make_net
         ~meter_for:(fun _ -> Some m)
         ~topology ())
  in
  let sim = p.T.Stack.sim in
  let failures = ref [] in
  let rounds = if quick then 20 else 40 in
  let ct, _st = T.Stack.establish p ~rounds in
  let faults =
    install_faults ~metrics:p.T.Stack.metrics ~seed ~spec
      ~link:p.T.Stack.link
      ~client_lance:p.T.Stack.client.T.Stack.lance
      ~server_lance:p.T.Stack.server.T.Stack.lance ()
  in
  T.Tcptest.start ct;
  let completed =
    pump sim
      ~deadline:(Ns.Sim.now sim +. 60.0e6)
      (fun () -> T.Tcptest.rounds_completed ct >= rounds)
  in
  check failures
    (Printf.sprintf "all %d roundtrips completed (%d done)" rounds
       (T.Tcptest.rounds_completed ct))
    completed;
  let rexmt =
    T.Tcp.retransmits p.T.Stack.client.T.Stack.tcp
    + T.Tcp.retransmits p.T.Stack.server.T.Stack.tcp
  in
  if is_clean spec then begin
    check failures "clean: no retransmissions" (rexmt = 0);
    check failures "clean: no wire drops"
      (Ns.Ether.Link.frames_dropped p.T.Stack.link = 0)
  end;
  drain_check ~metrics:p.T.Stack.metrics failures sim
    [ p.T.Stack.client.T.Stack.env; p.T.Stack.server.T.Stack.env ];
  let counters =
    [ ("rounds", T.Tcptest.rounds_completed ct);
      ("retransmits", rexmt);
      ("link_drops", Ns.Ether.Link.frames_dropped p.T.Stack.link) ]
    @ fault_counters faults
  in
  (List.rev !failures,
   List.sort compare (counters @ metrics_counters p.T.Stack.metrics))

(* Receiver advertises a zero window mid-transfer: the sender must arm
   the persist timer and probe (tcp_output/persist is otherwise dead
   code), then resume and finish once the window reopens. *)
let tcp_zero_window ~cover ~seed:_ ~spec:_ ~quick:_ ~topology =
  let m = Cover.meter cover in
  let p =
    T.Stack.pair_of_net
      (T.Stack.make_net
         ~meter_for:(fun _ -> Some m)
         ~topology ())
  in
  let sim = p.T.Stack.sim in
  let failures = ref [] in
  let received = Buffer.create 8192 in
  let srv_session = ref None in
  T.Tcp.listen p.T.Stack.server.T.Stack.tcp ~port:9 ~receive:(fun s data ->
      if !srv_session = None then srv_session := Some s;
      Buffer.add_bytes received data);
  let cs =
    T.Tcp.connect p.T.Stack.client.T.Stack.tcp ~local_port:2048
      ~remote_ip:p.T.Stack.server.T.Stack.ip_addr ~remote_port:9
      ~receive:(fun _ _ -> ())
  in
  ignore (Ns.Sim.run ~until:(Ns.Sim.now sim +. 100_000.0) sim);
  if T.Tcp.state cs <> T.Tcb.Established then
    ([ "handshake did not complete" ], [])
  else begin
    T.Tcp.set_nodelay cs true;
    (* close the receive window, then queue more data than the last
       advertised window can absorb: the surplus must wait on probes *)
    (T.Tcp.tcb cs).T.Tcb.rcv_wnd <- 4096;
    let server_tcb = ref None in
    let sent = Buffer.create 8192 in
    let chunks = 12 in
    for i = 0 to chunks - 1 do
      let b = pattern ~tag:i 512 in
      Buffer.add_bytes sent b;
      T.Tcp.send cs b;
      if i = 0 then begin
        (* first chunk reveals the server session; freeze its window *)
        ignore (Ns.Sim.run ~until:(Ns.Sim.now sim +. 5_000.0) sim);
        match !srv_session with
        | Some s ->
          let tcb = T.Tcp.tcb s in
          tcb.T.Tcb.rcv_wnd <- 0;
          server_tcb := Some tcb
        | None -> check failures "server session appeared" false
      end
    done;
    ignore (Ns.Sim.run ~until:(Ns.Sim.now sim +. 40_000.0) sim);
    let probes = T.Tcp.persist_probes p.T.Stack.client.T.Stack.tcp in
    check failures "persist probes sent while window closed" (probes > 0);
    check failures "transfer stalled on the closed window"
      (Buffer.length received < Buffer.length sent);
    (* reopen the window: the next probe's ack unblocks the sender *)
    (match !server_tcb with
    | Some tcb -> tcb.T.Tcb.rcv_wnd <- 4096
    | None -> ());
    let total = Buffer.length sent in
    let delivered =
      pump sim
        ~deadline:(Ns.Sim.now sim +. 2.0e6)
        (fun () -> Buffer.length received >= total)
    in
    check failures "all bytes delivered after reopen" delivered;
    if delivered then
      check failures "payload intact and in order"
        (Bytes.equal (Buffer.to_bytes received) (Buffer.to_bytes sent));
    T.Tcp.close cs;
    ignore (Ns.Sim.run ~until:(Ns.Sim.now sim +. 50_000.0) sim);
    (match !srv_session with
    | Some s -> T.Tcp.close s
    | None -> ());
    drain_check ~metrics:p.T.Stack.metrics failures sim
      [ p.T.Stack.client.T.Stack.env; p.T.Stack.server.T.Stack.env ];
    let counters =
      [ ("bytes", total);
        ("persist_probes", T.Tcp.persist_probes p.T.Stack.client.T.Stack.tcp)
      ]
    in
    (List.rev !failures,
   List.sort compare (counters @ metrics_counters p.T.Stack.metrics))
  end

(* Protocol edge cases that need no wire faults: send-before-establish,
   SYN to a dead port (retransmit give-up), unroutable destination,
   IP fragmentation/reassembly, unknown ethertype, and a receive handler
   that retains its buffer (forcing the pool's free/malloc slow path). *)
let tcp_edge ~cover ~seed:_ ~spec:_ ~quick:_ ~topology =
  let m = Cover.meter cover in
  let p =
    T.Stack.pair_of_net
      (T.Stack.make_net
         ~meter_for:(fun _ -> Some m)
         ~topology ())
  in
  let sim = p.T.Stack.sim in
  let client = p.T.Stack.client in
  let server = p.T.Stack.server in
  let failures = ref [] in
  (* SYN to a port nobody listens on: the client must retransmit with
     backoff and eventually give the session up (state Closed) *)
  let cs =
    T.Tcp.connect client.T.Stack.tcp ~local_port:2048
      ~remote_ip:server.T.Stack.ip_addr ~remote_port:99
      ~receive:(fun _ _ -> ())
  in
  (* send before the handshake: the notestab guard must reject it *)
  let notestab_raised =
    try
      T.Tcp.send cs (Bytes.make 4 'x');
      false
    with Failure _ -> true
  in
  check failures "send before establish rejected" notestab_raised;
  (* the backed-off SYN chain needs ~11 s of simulated time to exhaust
     its 12 tries (initial RTO is 24 ticks) *)
  let gave_up =
    pump sim
      ~deadline:(Ns.Sim.now sim +. 20.0e6)
      (fun () -> T.Tcp.state cs = T.Tcb.Closed)
  in
  check failures "dead-port connect gives up" gave_up;
  check failures "dead-port connect retransmitted"
    (T.Tcp.retransmits client.T.Stack.tcp > 0);
  (* unroutable destination: ip_push must drop, not raise *)
  let ip_dropped0 = T.Ip.packets_dropped client.T.Stack.ip in
  T.Udp.send client.T.Stack.udp ~src_port:5 ~dst_ip:0x0A000001 ~dst_port:5
    (pattern ~tag:1 32);
  check failures "unroutable datagram dropped"
    (T.Ip.packets_dropped client.T.Stack.ip = ip_dropped0 + 1);
  (* a 5000-byte datagram: fragmentation out, reassembly in *)
  let udp_got = ref None in
  T.Udp.bind server.T.Stack.udp ~port:53
    (fun ~src_ip:_ ~src_port:_ data -> udp_got := Some data);
  let big = pattern ~tag:2 5000 in
  T.Udp.send client.T.Stack.udp ~src_port:53
    ~dst_ip:server.T.Stack.ip_addr ~dst_port:53 big;
  ignore (Ns.Sim.run ~until:(Ns.Sim.now sim +. 50_000.0) sim);
  (match !udp_got with
  | Some data ->
    check failures "fragmented datagram reassembled intact"
      (Bytes.equal data big)
  | None -> check failures "fragmented datagram delivered" false);
  check failures "datagram was fragmented"
    (T.Ip.datagrams_fragmented client.T.Stack.ip > 0
    && T.Ip.datagrams_reassembled server.T.Stack.ip > 0);
  (* a frame for an ethertype nobody registered *)
  let stray = Msg.alloc client.T.Stack.env.Ns.Host_env.simmem ~headroom:64 0 in
  Msg.set_payload stray (pattern ~tag:3 64);
  Ns.Netdev.send client.T.Stack.netdev ~dst:server.T.Stack.mac
    ~ethertype:0x0999 stray;
  (* a handler that retains the receive buffer: the pool cannot reuse it
     in place and must genuinely free + reallocate *)
  Ns.Netdev.register server.T.Stack.netdev ~ethertype:0x0777
    (fun ~src:_ msg -> Msg.retain msg);
  let keep = Msg.alloc client.T.Stack.env.Ns.Host_env.simmem ~headroom:64 0 in
  Msg.set_payload keep (pattern ~tag:4 64);
  Ns.Netdev.send client.T.Stack.netdev ~dst:server.T.Stack.mac
    ~ethertype:0x0777 keep;
  ignore (Ns.Sim.run ~until:(Ns.Sim.now sim +. 10_000.0) sim);
  check failures "unknown ethertype hit the badtype guard"
    (Cover.triggered cover ~func:"eth_demux" ~block:"badtype" > 0);
  check failures "retained buffer forced pool free+malloc"
    (Cover.triggered cover ~func:"pool_put" ~block:"malloc" > 0);
  drain_check ~metrics:p.T.Stack.metrics failures sim
    [ client.T.Stack.env; server.T.Stack.env ];
  let counters =
    [ ("client_retransmits", T.Tcp.retransmits client.T.Stack.tcp);
      ("ip_fragmented", T.Ip.datagrams_fragmented client.T.Stack.ip);
      ("ip_reassembled", T.Ip.datagrams_reassembled server.T.Stack.ip) ]
  in
  (List.rev !failures,
   List.sort compare (counters @ metrics_counters p.T.Stack.metrics))

(* Multi-fragment BLAST transfers: reassembly with selective retransmit
   must deliver every message exactly once and intact; a 64 KB burst
   overruns the 16-descriptor LANCE transmit ring on the way out. *)
let blast_transfer ~cover ~seed ~spec ~quick ~topology =
  let m = Cover.meter cover in
  let p =
    R.Rstack.pair_of_net
      (R.Rstack.make_net
         ~meter_for:(fun _ -> Some m)
         ~topology ())
  in
  let sim = p.R.Rstack.sim in
  let client = p.R.Rstack.client in
  let server = p.R.Rstack.server in
  let failures = ref [] in
  let deliveries = ref [] in
  (* detach BID on the receiving side: this scenario exercises BLAST
     itself, so reassembled messages land in our collector *)
  R.Blast.set_upper server.R.Rstack.blast (fun ~src:_ msg ->
      deliveries := Msg.contents msg :: !deliveries);
  let faults =
    install_faults ~metrics:p.R.Rstack.metrics ~seed ~spec
      ~link:p.R.Rstack.link ~client_lance:client.R.Rstack.lance
      ~server_lance:server.R.Rstack.lance ()
  in
  let sizes = if quick then [ 4000; 33000 ] else [ 4000; 12000; 64000; 2900 ] in
  List.iteri
    (fun i size ->
      let payload = pattern ~tag:i size in
      let msg = Msg.alloc client.R.Rstack.env.Ns.Host_env.simmem ~headroom:64 0 in
      Msg.set_payload msg payload;
      R.Blast.push client.R.Rstack.blast ~dst:server.R.Rstack.mac msg;
      let want = i + 1 in
      let delivered =
        pump sim
          ~deadline:(Ns.Sim.now sim +. 500_000.0)
          (fun () -> List.length !deliveries >= want)
      in
      check failures
        (Printf.sprintf "message %d (%d B) delivered" i size)
        delivered;
      if delivered then begin
        check failures
          (Printf.sprintf "message %d delivered exactly once" i)
          (List.length !deliveries = want);
        check failures
          (Printf.sprintf "message %d intact" i)
          (Bytes.equal (List.hd !deliveries) payload)
      end)
    sizes;
  let lf, _, _ = faults in
  check failures "large burst overran the tx ring"
    (Ns.Netdev.tx_ring_full_events client.R.Rstack.netdev > 0);
  if is_clean spec then begin
    check failures "clean: no NACKs"
      (R.Blast.nacks_sent server.R.Rstack.blast = 0);
    check failures "clean: no fragment retransmissions"
      (R.Blast.retransmissions client.R.Rstack.blast = 0)
  end;
  if Ns.Fault.drops lf >= 3 then
    check failures "fragment loss recovered by NACK"
      (R.Blast.nacks_sent server.R.Rstack.blast > 0
      && R.Blast.retransmissions client.R.Rstack.blast > 0);
  if Ns.Fault.corruptions lf >= 3 then
    check failures "corrupted fragments rejected by checksum"
      (R.Blast.cksum_drops server.R.Rstack.blast
       + R.Blast.cksum_drops client.R.Rstack.blast
       > 0);
  drain_check ~metrics:p.R.Rstack.metrics failures sim
    [ client.R.Rstack.env; server.R.Rstack.env ];
  let counters =
    [ ("messages", List.length !deliveries);
      ("nacks", R.Blast.nacks_sent server.R.Rstack.blast);
      ("frag_retransmits", R.Blast.retransmissions client.R.Rstack.blast);
      ("cksum_drops",
       R.Blast.cksum_drops server.R.Rstack.blast
       + R.Blast.cksum_drops client.R.Rstack.blast);
      ("late_fragments", R.Blast.late_fragments server.R.Rstack.blast);
      ("abandoned", R.Blast.abandoned server.R.Rstack.blast);
      ("ring_full_events",
       Ns.Netdev.tx_ring_full_events client.R.Rstack.netdev) ]
    @ fault_counters faults
  in
  (List.rev !failures,
   List.sort compare (counters @ metrics_counters p.R.Rstack.metrics))

(* The RPC ping-pong under faults: CHAN's request retransmission must
   carry every call to completion; a clean wire retransmits nothing. *)
let rpc_pingpong ~cover ~seed ~spec ~quick ~topology =
  let m = Cover.meter cover in
  let p =
    R.Rstack.pair_of_net
      (R.Rstack.make_net
         ~meter_for:(fun _ -> Some m)
         ~topology ())
  in
  let sim = p.R.Rstack.sim in
  let failures = ref [] in
  let rounds = if quick then 15 else 30 in
  let ct, _st = R.Rstack.make_tests p ~rounds in
  let faults =
    install_faults ~metrics:p.R.Rstack.metrics ~seed ~spec
      ~link:p.R.Rstack.link
      ~client_lance:p.R.Rstack.client.R.Rstack.lance
      ~server_lance:p.R.Rstack.server.R.Rstack.lance ()
  in
  R.Xrpctest.start ct;
  let completed =
    pump sim
      ~deadline:(Ns.Sim.now sim +. 60.0e6)
      (fun () -> R.Xrpctest.rounds_completed ct >= rounds)
  in
  check failures
    (Printf.sprintf "all %d calls completed (%d done)" rounds
       (R.Xrpctest.rounds_completed ct))
    completed;
  let creq = R.Chan.request_retransmits p.R.Rstack.client.R.Rstack.chan in
  if is_clean spec then begin
    check failures "clean: no request retransmissions" (creq = 0);
    check failures "clean: no wire drops"
      (Ns.Ether.Link.frames_dropped p.R.Rstack.link = 0)
  end;
  check failures "no calls abandoned"
    (R.Chan.call_failures p.R.Rstack.client.R.Rstack.chan = 0);
  drain_check ~metrics:p.R.Rstack.metrics failures sim
    [ p.R.Rstack.client.R.Rstack.env; p.R.Rstack.server.R.Rstack.env ];
  let counters =
    [ ("rounds", R.Xrpctest.rounds_completed ct);
      ("request_retransmits", creq);
      ("duplicate_requests",
       R.Chan.duplicate_requests p.R.Rstack.server.R.Rstack.chan);
      ("link_drops", Ns.Ether.Link.frames_dropped p.R.Rstack.link) ]
    @ fault_counters faults
  in
  (List.rev !failures,
   List.sort compare (counters @ metrics_counters p.R.Rstack.metrics))

(* CHAN/VCHAN/MSELECT edge cases on a clean wire: a busy channel, an
   unanswered request retransmitting to its cap, a duplicate reply with
   nobody waiting, an undecodable request, channel-pool growth under
   concurrent calls, and a call to an unregistered client id. *)
let rpc_stress ~cover ~seed:_ ~spec:_ ~quick:_ ~topology =
  let m = Cover.meter cover in
  let p =
    R.Rstack.pair_of_net
      (R.Rstack.make_net
         ~meter_for:(fun _ -> Some m)
         ~topology ())
  in
  let sim = p.R.Rstack.sim in
  let client = p.R.Rstack.client in
  let server = p.R.Rstack.server in
  let failures = ref [] in
  let simmem h = h.R.Rstack.env.Ns.Host_env.simmem in
  (* a request whose payload is too short for MSELECT to decode: the
     server hits badclient and never replies, so the client channel
     retransmits (duplicate requests on the server) until we forge the
     reply ourselves *)
  let direct_reply = ref 0 in
  let short = Msg.alloc (simmem client) ~headroom:64 0 in
  Msg.set_payload short (Bytes.make 2 'q');
  R.Chan.call client.R.Rstack.chan ~chan:100 short ~reply:(fun _ ->
      incr direct_reply);
  (* a second call on the same channel must be rejected as busy *)
  let busy_raised =
    let again = Msg.alloc (simmem client) ~headroom:64 0 in
    Msg.set_payload again (Bytes.make 2 'q');
    try
      R.Chan.call client.R.Rstack.chan ~chan:100 again ~reply:(fun _ -> ());
      false
    with Failure _ -> true
  in
  check failures "second call on a busy channel rejected" busy_raised;
  (* let two retransmissions reach the server *)
  ignore (Ns.Sim.run ~until:(Ns.Sim.now sim +. 12_000.0) sim);
  check failures "undecodable request hit badclient"
    (Cover.triggered cover ~func:"mselect_demux" ~block:"badclient" > 0);
  check failures "request retransmissions seen as duplicates"
    (R.Chan.duplicate_requests server.R.Rstack.chan > 0);
  (* forge the reply the server never sent; the duplicate that follows
     finds nobody waiting (thread_signal/nowaiter) *)
  let forge_reply () =
    let msg = Msg.alloc (simmem server) ~headroom:64 0 in
    Msg.push msg
      (R.Hdrs.Chan.to_bytes
         { R.Hdrs.Chan.kind = R.Hdrs.Chan.Reply; chan = 100; seq = 1; len = 0 });
    R.Bid.push server.R.Rstack.bid ~dst:client.R.Rstack.mac msg
  in
  forge_reply ();
  ignore (Ns.Sim.run ~until:(Ns.Sim.now sim +. 5_000.0) sim);
  check failures "forged reply resumed the caller" (!direct_reply = 1);
  forge_reply ();
  ignore (Ns.Sim.run ~until:(Ns.Sim.now sim +. 5_000.0) sim);
  check failures "duplicate reply found nobody waiting"
    (Cover.triggered cover ~func:"thread_signal" ~block:"nowaiter" > 0);
  (* ten concurrent calls through MSELECT: the 8-channel pool must grow *)
  R.Mselect.register server.R.Rstack.mselect ~client:7 (fun data ~reply ->
      reply data);
  let echoes = ref 0 in
  let wanted = 10 in
  for i = 0 to wanted - 1 do
    let payload = pattern ~tag:i 24 in
    let msg = Msg.alloc (simmem client) ~headroom:64 0 in
    Msg.set_payload msg payload;
    R.Mselect.call client.R.Rstack.mselect ~client:7 msg ~reply:(fun data ->
        if Bytes.equal data payload then incr echoes)
  done;
  let echoed =
    pump sim
      ~deadline:(Ns.Sim.now sim +. 100_000.0)
      (fun () -> !echoes >= wanted)
  in
  check failures
    (Printf.sprintf "all %d concurrent calls echoed (%d done)" wanted !echoes)
    echoed;
  check failures "channel pool grew under concurrency"
    (Cover.triggered cover ~func:"vchan_call" ~block:"growpool" > 0);
  (* a call to a client id with no registered server procedure: no reply
     ever comes, so the channel must retransmit to its cap and give up *)
  let orphan = Msg.alloc (simmem client) ~headroom:64 0 in
  Msg.set_payload orphan (pattern ~tag:99 24);
  R.Mselect.call client.R.Rstack.mselect ~client:99 orphan ~reply:(fun _ ->
      check failures "unregistered client id must never get a reply" false);
  ignore (Ns.Sim.run ~until:(Ns.Sim.now sim +. 80_000.0) sim);
  check failures "unanswered call abandoned after the retransmit cap"
    (R.Chan.call_failures client.R.Rstack.chan = 1);
  drain_check ~metrics:p.R.Rstack.metrics failures sim
    [ client.R.Rstack.env; server.R.Rstack.env ];
  let counters =
    [ ("echoes", !echoes);
      ("duplicate_requests", R.Chan.duplicate_requests server.R.Rstack.chan);
      ("call_failures", R.Chan.call_failures client.R.Rstack.chan) ]
  in
  (List.rev !failures,
   List.sort compare (counters @ metrics_counters p.R.Rstack.metrics))

(* ----- the matrix --------------------------------------------------------- *)

type scenario = {
  name : string;
  applies : string list;
  body :
    cover:Cover.t ->
    seed:int ->
    spec:Ns.Fault.spec ->
    quick:bool ->
    topology:Ns.Topology.t ->
    string list * (string * int) list;
}

let scenarios =
  [ { name = "tcp_transfer";
      applies =
        [ "clean"; "loss"; "burst"; "corrupt"; "dup"; "reorder"; "mixed";
          "device" ];
      body = tcp_transfer };
    { name = "tcp_pingpong";
      applies = [ "clean"; "loss"; "dup"; "reorder" ];
      body = tcp_pingpong };
    { name = "tcp_zero_window"; applies = [ "clean" ]; body = tcp_zero_window };
    { name = "tcp_edge"; applies = [ "clean" ]; body = tcp_edge };
    { name = "blast_transfer";
      applies = [ "clean"; "loss"; "corrupt"; "reorder"; "device"; "mixed" ];
      body = blast_transfer };
    { name = "rpc_pingpong";
      applies = [ "clean"; "loss"; "dup"; "mixed" ];
      body = rpc_pingpong };
    { name = "rpc_stress"; applies = [ "clean" ]; body = rpc_stress } ]

type report = {
  cells : cell list;
  cover : Cover.t;
  covered : (string * string) list;
  missing : (string * string) list;
  digest : string;
}

(* distinct stream from Engine.sample_seed so the soak and the paper's
   measurement protocol never share fault sequences *)
let seed_for i = 7001 + (i * 104729)

let canonical_cells cells =
  let b = Buffer.create 4096 in
  List.iter
    (fun c ->
      Buffer.add_string b
        (Printf.sprintf "%s/%s/%d %s" c.scenario c.schedule c.seed
           (if c.failures = [] then "ok" else "FAIL"));
      List.iter (fun f -> Buffer.add_string b (" !" ^ f)) c.failures;
      List.iter
        (fun (k, v) -> Buffer.add_string b (Printf.sprintf " %s=%d" k v))
        c.counters;
      Buffer.add_char b '\n')
    cells;
  Buffer.contents b

let run ?(seeds = 4) ?jobs ?(quick = false)
    ?(topology = Ns.Topology.pair ()) () =
  let tasks =
    List.concat_map
      (fun sc ->
        List.concat_map
          (fun sch ->
            if not (List.mem sch.sname sc.applies) then []
            else
              (* the clean schedule draws no randomness: one cell *)
              let n = if sch.sname = "clean" then 1 else max 1 seeds in
              List.init n (fun i ->
                  let seed = seed_for i in
                  fun () ->
                    let cover = Cover.create () in
                    let failures, counters =
                      try sc.body ~cover ~seed ~spec:sch.sspec ~quick ~topology
                      with e ->
                        ([ "exception: " ^ Printexc.to_string e ], [])
                    in
                    ( { scenario = sc.name;
                        schedule = sch.sname;
                        seed;
                        failures;
                        counters },
                      cover )))
          schedules)
      scenarios
  in
  let results = Protolat_util.Dpool.run ?jobs tasks in
  let cells = List.map fst results in
  let cover = Cover.create () in
  List.iter (fun (_, c) -> Cover.merge ~into:cover c) results;
  let covered, missing =
    List.partition
      (fun (func, block) -> Cover.triggered cover ~func ~block > 0)
      tracked_cold_blocks
  in
  let canonical =
    canonical_cells cells
    ^ "covered:"
    ^ String.concat ","
        (List.map (fun (f, b) -> f ^ "/" ^ b) covered)
    ^ "\n"
  in
  let digest = Digest.to_hex (Digest.string canonical) in
  { cells; cover; covered; missing; digest }

let coverage_pct r =
  100.0
  *. float_of_int (List.length r.covered)
  /. float_of_int (List.length tracked_cold_blocks)

let passed r =
  List.for_all (fun c -> c.failures = []) r.cells && coverage_pct r >= 90.0

let render r =
  let b = Buffer.create 4096 in
  let ok_cells = List.length (List.filter (fun c -> c.failures = []) r.cells) in
  Buffer.add_string b
    (Printf.sprintf "protocol soak: %d/%d cells passed\n" ok_cells
       (List.length r.cells));
  List.iter
    (fun c ->
      Buffer.add_string b
        (Printf.sprintf "  %-16s %-8s seed=%-8d %s\n" c.scenario c.schedule
           c.seed
           (if c.failures = [] then "ok" else "FAIL"));
      List.iter
        (fun f -> Buffer.add_string b (Printf.sprintf "      failed: %s\n" f))
        c.failures)
    r.cells;
  Buffer.add_string b
    (Printf.sprintf "cold-path coverage: %d/%d tracked blocks triggered (%.1f%%)\n"
       (List.length r.covered)
       (List.length tracked_cold_blocks)
       (coverage_pct r));
  if r.missing <> [] then
    Buffer.add_string b
      ("  never triggered: "
      ^ String.concat ", "
          (List.map (fun (f, bl) -> f ^ "/" ^ bl) r.missing)
      ^ "\n");
  let agg = Hashtbl.create 64 in
  List.iter
    (fun c ->
      List.iter
        (fun (k, v) ->
          if String.contains k '.' then
            Hashtbl.replace agg k
              (v + Option.value ~default:0 (Hashtbl.find_opt agg k)))
        c.counters)
    r.cells;
  let names = List.sort compare (Hashtbl.fold (fun k _ a -> k :: a) agg []) in
  if names <> [] then begin
    Buffer.add_string b "metrics (summed across cells):\n";
    List.iter
      (fun k ->
        Buffer.add_string b
          (Printf.sprintf "  %-36s %d\n" k (Hashtbl.find agg k)))
      names
  end;
  Buffer.add_string b (Printf.sprintf "digest: %s\n" r.digest);
  Buffer.add_string b
    (Printf.sprintf "verdict: %s\n" (if passed r then "PASS" else "FAIL"));
  Buffer.contents b
