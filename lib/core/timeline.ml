module Obs = Protolat_obs

type t = {
  stack : Engine.stack_kind;
  version : Config.version;
  processes : Obs.Perfetto.process list;
  results : Engine.run_result list;
}

let seed_of ~base_seed i = base_seed + (i * 7919)

let collect ?(base_seed = 42) ?(seeds = 1) ?(rounds = 12) ?fault ?jobs ~stack
    ~version () =
  let config = Config.make version in
  let results =
    Protolat_util.Dpool.run ?jobs
      (List.init seeds (fun i ->
           fun () ->
            Engine.run
              (Engine.Spec.make ~seed:(seed_of ~base_seed i) ~rounds ?fault
                 ~trace_events:true ~stack ~config ())))
  in
  let processes =
    List.mapi
      (fun i (r : Engine.run_result) ->
        { Obs.Perfetto.pid = i;
          pname =
            Printf.sprintf "%s/%s seed=%d" (Engine.stack_name stack)
              (Config.version_name version)
              (seed_of ~base_seed i);
          threads = [ (0, "client"); (1, "server"); (2, "wire") ];
          tracer = r.Engine.events })
      results
  in
  { stack; version; processes; results }

let to_json t = Obs.Perfetto.to_string t.processes

let events t =
  List.fold_left
    (fun acc (r : Engine.run_result) -> acc + Obs.Tracer.length r.Engine.events)
    0 t.results

let raw t =
  let b = Buffer.create 4096 in
  List.iter
    (fun (r : Engine.run_result) ->
      Obs.Tracer.iter r.Engine.events (fun (e : Obs.Tracer.event) ->
          Printf.bprintf b "%12.3f  tid=%d  %-5s %s/%s"
            e.Obs.Tracer.ts e.Obs.Tracer.tid
            (match e.Obs.Tracer.phase with
            | `Instant -> "inst"
            | `Begin -> "begin"
            | `End -> "end")
            e.Obs.Tracer.cat e.Obs.Tracer.name;
          if e.Obs.Tracer.id >= 0 then
            Printf.bprintf b " id=%d" e.Obs.Tracer.id;
          Printf.bprintf b " a0=%d\n" e.Obs.Tracer.a0))
    t.results;
  Buffer.contents b
