(** Per-layer latency attribution reports ([protolat profile]).

    Runs one configuration, attributes every cycle of the collected
    steady-state (or cold) roundtrip trace to its originating function via
    {!Protolat_obs.Attrib}, and rolls functions up into the paper's
    protocol layers (TCPTEST/TCP/IP/VNET/ETH/LANCE for the TCP/IP stack;
    XRPCTEST/MSELECT/VCHAN/CHAN/BID/BLAST/ETH/LANCE for RPC; LIB for
    shared library code; OTHER for untagged instructions).

    {!check} enforces the conservation laws: per-function and per-layer
    columns must sum to the aggregate {!Protolat_machine.Perf} report, and
    cold + self + cross conflict classifications must account for every
    i-cache miss. *)

module Machine = Protolat_machine
module Obs = Protolat_obs

val layer_of : stack:Engine.stack_kind -> string -> string
(** Protocol layer of a function name ("LIB" for library helpers, "OTHER"
    for names the stack does not know). *)

val layer_order : stack:Engine.stack_kind -> string list
(** Layers top-down in protocol order, then LIB and OTHER. *)

type layer = {
  layer : string;
  instrs : int;
  issue : float;
  penalty : float;
  stall : float;
  imiss : int;
  imiss_cold : int;
  imiss_repl : int;
  dwb_miss : int;
}

val layer_cycles : layer -> float

val layer_mcpi : layer -> float

type t = {
  stack : Engine.stack_kind;
  version : Config.version;
  topology : Protolat_netsim.Topology.t;
  seed : int;
  mode : [ `Steady | `Cold ];
  run : Engine.run_result;
  attrib : Obs.Attrib.t;
  layers : layer list;
}

val collect :
  ?topology:Protolat_netsim.Topology.t ->
  ?seed:int ->
  ?rounds:int ->
  ?mode:[ `Steady | `Cold ] ->
  ?params:Machine.Params.t ->
  stack:Engine.stack_kind ->
  version:Config.version ->
  unit ->
  t

val collect_many :
  ?topology:Protolat_netsim.Topology.t ->
  ?seed:int ->
  ?rounds:int ->
  ?mode:[ `Steady | `Cold ] ->
  ?params:Machine.Params.t ->
  ?jobs:int ->
  stack:Engine.stack_kind ->
  Config.version list ->
  t list
(** One {!collect} per version, fanned over a domain pool; results are
    identical at any job count. *)

val report : t -> Machine.Perf.report
(** The aggregate report the attribution must agree with (steady or cold
    depending on [mode]). *)

val check : t -> (unit, string) result
(** All conservation laws, or a newline-separated list of violations. *)

val render : ?top:int -> t -> string
(** Text report: aggregate line, per-layer table, top-[top] (default 12)
    functions by attributed cycles, and the i-cache conflict matrix. *)

val to_json : t -> string
(** Deterministic JSON document embedding the layer/function/conflict
    breakdowns and the run's unified metrics dump. *)
