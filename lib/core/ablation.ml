module Util = Protolat_util
module Machine = Protolat_machine
module Table = Util.Table

let f1 = Table.cell_f ~digits:1

let f2 = Table.cell_f ~digits:2

let rtt r = Util.Stats.mean r.Engine.rtts

(* every ablation cell is a TCP/IP spec varying one knob *)
let run ?params ?layout ?rx_overhead_us config =
  Engine.run
    (Engine.Spec.make ?params ?layout ?rx_overhead_us ~stack:Engine.Tcpip
       ~config ())

let classifier () =
  let t =
    Table.create
      ~title:
        "Ablation: packet-classifier overhead in front of the inlined path"
      ~headers:[ "Version"; "classifier [us/pkt]"; "RTT [us]"; "vs OUT [us]" ]
  in
  let out = rtt (run (Config.make Config.Out)) in
  List.iter
    (fun version ->
      List.iter
        (fun ov ->
          let r = run ~rx_overhead_us:ov (Config.make version) in
          Table.add_row t
            [ Config.version_name version; f1 ov; f1 (rtt r);
              f1 (rtt r -. out) ])
        [ 0.0; 1.0; 2.0; 4.0 ])
    [ Config.Pin; Config.All ];
  Table.add_row t [ "OUT (no classifier needed)"; "-"; f1 out; "0.0" ];
  t

let with_icache bytes =
  { Machine.Params.default with Machine.Params.icache_bytes = bytes }

let cache_size () =
  let t =
    Table.create ~title:"Ablation: i-cache size vs technique value (TCP/IP)"
      ~headers:
        [ "i-cache"; "STD RTT"; "ALL RTT"; "gain [us]"; "STD mCPI";
          "ALL mCPI" ]
  in
  List.iter
    (fun kb ->
      let params = with_icache (kb * 1024) in
      let std = run ~params (Config.make Config.Std) in
      let all = run ~params (Config.make Config.All) in
      Table.add_row t
        [ Printf.sprintf "%d KB" kb;
          f1 (rtt std);
          f1 (rtt all);
          f1 (rtt std -. rtt all);
          f2 std.Engine.steady.Machine.Perf.mcpi;
          f2 all.Engine.steady.Machine.Perf.mcpi ])
    [ 4; 8; 16; 32 ];
  t

let linear_vs_bipartite () =
  let t =
    Table.create
      ~title:
        "Ablation: linear vs bipartite layout by i-cache size (S3.2's \
         closing caveat; TCP/IP, cloned+outlined)"
      ~headers:
        [ "i-cache"; "bipartite RTT"; "linear RTT"; "bipartite mCPI";
          "linear mCPI" ]
  in
  List.iter
    (fun kb ->
      let params = with_icache (kb * 1024) in
      let go layout = run ~params ~layout (Config.make Config.Clo) in
      let bi = go Config.Bipartite and lin = go Config.Linear in
      Table.add_row t
        [ Printf.sprintf "%d KB" kb;
          f1 (rtt bi);
          f1 (rtt lin);
          f2 bi.Engine.steady.Machine.Perf.mcpi;
          f2 lin.Engine.steady.Machine.Perf.mcpi ])
    [ 8; 16; 32; 64 ];
  t

(* Layouts x i-cache sizes from ONE protocol simulation: the base run's
   steady trace is retargeted per layout (pc rewrite), and per geometry the
   segmentation is rebuilt once and re-bound per candidate — the sweep's
   cost is replays, not full runs (see Experiments.layout_sweep). *)
let layout_matrix () =
  let module Layout = Protolat_layout in
  let module Trace = Machine.Trace in
  let config = Config.make Config.Clo in
  let stack = Engine.Tcpip in
  let base_layout = Config.layout_of config.Config.version in
  let base =
    Engine.run (Engine.Spec.make ~stack ~config ~layout:base_layout ())
  in
  let traces =
    List.map
      (fun layout ->
        if layout = base_layout then (layout, base.Engine.trace)
        else
          let img = Engine.layout_for config stack ~layout () in
          ( layout,
            Trace.map_pcs
              (Layout.Image.pc_map base.Engine.client_image img)
              base.Engine.trace ))
      Experiments.layout_candidates
  in
  let t =
    Table.create
      ~title:
        "Ablation: steady replay time [us] by layout and i-cache size \
         (TCP/IP, cloned+outlined; incremental sweep)"
      ~headers:
        ("i-cache"
        :: List.map
             (fun (l, _) -> Config.layout_name l)
             traces)
  in
  List.iter
    (fun kb ->
      let params = with_icache (kb * 1024) in
      let bc0 = Machine.Blockcache.segment params base.Engine.trace in
      Table.add_row t
        (Printf.sprintf "%d KB" kb
        :: List.map
             (fun (layout, trace) ->
               let bc =
                 if layout = base_layout then bc0
                 else Machine.Blockcache.rebind bc0 trace
               in
               f1 (Machine.Perf.steady_bc params bc).Machine.Perf.time_us)
             traces))
    [ 4; 8; 16; 32 ];
  t

let future_machine () =
  let t =
    Table.create
      ~title:
        "Ablation: S5 outlook - 266 MHz CPU with a 66 MB/s memory system"
      ~headers:
        [ "Machine"; "STD mCPI"; "ALL mCPI"; "STD Tp [us]"; "ALL Tp [us]";
          "Tp gain" ]
  in
  let measured = Machine.Params.default in
  (* clock x1.52, memory bandwidth x0.66: relative memory latency x2.3 *)
  let future =
    { measured with
      Machine.Params.clock_mhz = 266.0;
      Machine.Params.b_hit_cycles = 23;
      Machine.Params.b_seq_cycles = 11;
      Machine.Params.mem_cycles = 104 }
  in
  List.iter
    (fun (name, params) ->
      let std = run ~params (Config.make Config.Std) in
      let all = run ~params (Config.make Config.All) in
      let tp r = r.Engine.steady.Machine.Perf.time_us in
      Table.add_row t
        [ name;
          f2 std.Engine.steady.Machine.Perf.mcpi;
          f2 all.Engine.steady.Machine.Perf.mcpi;
          f1 (tp std);
          f1 (tp all);
          Printf.sprintf "%.0f%%" (100.0 *. (tp std -. tp all) /. tp std) ])
    [ ("DEC 3000/600 (175 MHz, 100 MB/s)", measured);
      ("next generation (266 MHz, 66 MB/s)", future) ];
  t
