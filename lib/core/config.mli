(** The six measured configurations of §4.2. *)

type version =
  | Std  (** §2.2 improvements only; uncontrolled (link-order) layout *)
  | Out  (** STD + outlining *)
  | Clo  (** OUT + cloning with the bipartite layout *)
  | Bad  (** CLO but cloned to a pessimal layout *)
  | Pin  (** OUT + path-inlining *)
  | All  (** PIN + cloning (bipartite): every technique *)

val all_versions : version list

val version_name : version -> string

val of_name : string -> version option

val outlined : version -> bool

type layout =
  | Link_order
  | Bipartite
  | Pessimal
  | Micro  (** the micro-positioning strategy of §3.2 (extra experiment) *)
  | Linear
      (** strict first-invocation order with no path/library partition —
          the layout §3.2 recommends when the whole path fits in the
          i-cache *)

val layout_of : version -> layout

val layout_name : layout -> string

val path_inlined : version -> bool

val cloned : version -> bool
(** Whether clone specialization (prologue skip, PC-relative calls) is
    applied. *)

type t = {
  version : version;
  opts : Protolat_tcpip.Opts.t;
}

val make : ?opts:Protolat_tcpip.Opts.t -> version -> t
