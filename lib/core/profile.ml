module Machine = Protolat_machine
module Obs = Protolat_obs
module Stats = Protolat_util.Stats

(* ----- layer mapping ------------------------------------------------------- *)

let library_funcs =
  [ "in_cksum"; "udiv"; "msg_prepare"; "map_resolve"; "event_register";
    "event_cancel"; "pool_put"; "thread_block"; "thread_signal" ]

let has_prefix p s =
  String.length s >= String.length p && String.sub s 0 (String.length p) = p

let layer_of ~stack func =
  if List.mem func library_funcs then "LIB"
  else
    let pfx = [ ("eth_", "ETH"); ("lance_", "LANCE") ] in
    let pfx =
      match stack with
      | Engine.Tcpip ->
        [ ("tcptest_", "TCPTEST"); ("clientstream_", "TCP"); ("tcp_", "TCP");
          ("ip_", "IP"); ("vnet_", "VNET") ]
        @ pfx
      | Engine.Rpc ->
        [ ("xrpctest_", "XRPCTEST"); ("mselect_", "MSELECT");
          ("vchan_", "VCHAN"); ("chan_", "CHAN"); ("bid_", "BID");
          ("blast_", "BLAST") ]
        @ pfx
    in
    match List.find_opt (fun (p, _) -> has_prefix p func) pfx with
    | Some (_, l) -> l
    | None -> "OTHER"

let layer_order ~stack =
  (match stack with
  | Engine.Tcpip -> [ "TCPTEST"; "TCP"; "IP"; "VNET"; "ETH"; "LANCE" ]
  | Engine.Rpc ->
    [ "XRPCTEST"; "MSELECT"; "VCHAN"; "CHAN"; "BID"; "BLAST"; "ETH"; "LANCE" ])
  @ [ "LIB"; "OTHER" ]

type layer = {
  layer : string;
  instrs : int;
  issue : float;
  penalty : float;
  stall : float;
  imiss : int;
  imiss_cold : int;
  imiss_repl : int;
  dwb_miss : int;
}

let layer_cycles (l : layer) = l.issue +. l.penalty +. l.stall

let layer_mcpi (l : layer) =
  if l.instrs = 0 then 0.0 else l.stall /. float_of_int l.instrs

let layers_of ~stack (a : Obs.Attrib.t) =
  let order = layer_order ~stack in
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (r : Obs.Attrib.row) ->
      let l = layer_of ~stack r.Obs.Attrib.func in
      let cur =
        match Hashtbl.find_opt tbl l with
        | Some c -> c
        | None ->
          { layer = l; instrs = 0; issue = 0.0; penalty = 0.0; stall = 0.0;
            imiss = 0; imiss_cold = 0; imiss_repl = 0; dwb_miss = 0 }
      in
      Hashtbl.replace tbl l
        { cur with
          instrs = cur.instrs + r.Obs.Attrib.instrs;
          issue = cur.issue +. r.Obs.Attrib.issue;
          penalty = cur.penalty +. r.Obs.Attrib.penalty;
          stall = cur.stall +. r.Obs.Attrib.stall;
          imiss = cur.imiss + r.Obs.Attrib.imiss;
          imiss_cold = cur.imiss_cold + r.Obs.Attrib.imiss_cold;
          imiss_repl = cur.imiss_repl + r.Obs.Attrib.imiss_repl;
          dwb_miss = cur.dwb_miss + r.Obs.Attrib.dwb_miss })
    a.Obs.Attrib.rows;
  List.filter_map (Hashtbl.find_opt tbl) order

(* ----- collection ---------------------------------------------------------- *)

type t = {
  stack : Engine.stack_kind;
  version : Config.version;
  topology : Protolat_netsim.Topology.t;
  seed : int;
  mode : [ `Steady | `Cold ];
  run : Engine.run_result;
  attrib : Obs.Attrib.t;
  layers : layer list;
}

let collect ?(topology = Protolat_netsim.Topology.pair ()) ?(seed = 42)
    ?(rounds = 24) ?(mode = `Steady) ?(params = Machine.Params.default)
    ~stack ~version () =
  let config = Config.make version in
  let run =
    Engine.run
      (Engine.Spec.make ~topology ~seed ~rounds ~params ~stack ~config ())
  in
  let attrib =
    Obs.Attrib.profile ~mode params run.Engine.client_image run.Engine.trace
  in
  { stack;
    version;
    topology;
    seed;
    mode;
    run;
    attrib;
    layers = layers_of ~stack attrib }

let collect_many ?topology ?seed ?rounds ?mode ?params ?jobs ~stack versions =
  Protolat_util.Dpool.run ?jobs
    (List.map
       (fun version ->
         fun () ->
          collect ?topology ?seed ?rounds ?mode ?params ~stack ~version ())
       versions)

let report t =
  match t.mode with
  | `Steady -> t.run.Engine.steady
  | `Cold -> t.run.Engine.cold

(* ----- consistency checks (the acceptance bars) ---------------------------- *)

let feq a b = Float.abs (a -. b) <= 1e-6 *. Float.max 1.0 (Float.abs a)

let check t =
  let rep = report t in
  let tot = t.attrib.Obs.Attrib.totals in
  let st = rep.Machine.Perf.stats in
  let errs = ref [] in
  let err fmt = Printf.ksprintf (fun s -> errs := s :: !errs) fmt in
  if tot.Obs.Attrib.instrs <> rep.Machine.Perf.length then
    err "instrs: attributed %d <> trace %d" tot.Obs.Attrib.instrs
      rep.Machine.Perf.length;
  if not (feq tot.Obs.Attrib.issue rep.Machine.Perf.issue_cycles) then
    err "issue cycles: attributed %.6f <> aggregate %.6f" tot.Obs.Attrib.issue
      rep.Machine.Perf.issue_cycles;
  if
    not
      (feq
         (tot.Obs.Attrib.issue +. tot.Obs.Attrib.penalty)
         rep.Machine.Perf.instr_cycles)
  then
    err "instr cycles: attributed %.6f <> aggregate %.6f"
      (tot.Obs.Attrib.issue +. tot.Obs.Attrib.penalty)
      rep.Machine.Perf.instr_cycles;
  if not (feq (Obs.Attrib.cycles tot) rep.Machine.Perf.total_cycles) then
    err "total cycles: attributed %.6f <> aggregate %.6f"
      (Obs.Attrib.cycles tot) rep.Machine.Perf.total_cycles;
  if tot.Obs.Attrib.imiss <> st.Machine.Memsys.icache.Machine.Memsys.miss then
    err "i-cache misses: attributed %d <> aggregate %d" tot.Obs.Attrib.imiss
      st.Machine.Memsys.icache.Machine.Memsys.miss;
  let self = Obs.Attrib.self_imisses t.attrib in
  let cross = Obs.Attrib.cross_imisses t.attrib in
  let cold = t.attrib.Obs.Attrib.cold_imisses in
  if cold + self + cross <> tot.Obs.Attrib.imiss then
    err "conflict coverage: cold %d + self %d + cross %d <> %d i-misses" cold
      self cross tot.Obs.Attrib.imiss;
  let lsum f z add = List.fold_left (fun a l -> add a (f l)) z t.layers in
  if lsum (fun l -> l.instrs) 0 ( + ) <> tot.Obs.Attrib.instrs then
    err "layer instrs do not sum to the function total";
  if not (feq (lsum layer_cycles 0.0 ( +. )) (Obs.Attrib.cycles tot)) then
    err "layer cycles do not sum to the function total";
  match !errs with [] -> Ok () | es -> Error (String.concat "\n" (List.rev es))

(* ----- rendering ----------------------------------------------------------- *)

let header t =
  Printf.sprintf "%s / %s  seed=%d  %s attribution"
    (Engine.stack_name t.stack)
    (Config.version_name t.version)
    t.seed
    (match t.mode with `Steady -> "steady-state" | `Cold -> "cold-start")

let render ?(top = 12) t =
  let b = Buffer.create 4096 in
  let rep = report t in
  let tot = t.attrib.Obs.Attrib.totals in
  Buffer.add_string b (header t);
  Buffer.add_char b '\n';
  Printf.bprintf b
    "aggregate: %d instrs, %.1f cycles = issue %.1f + penalty %.1f + stall \
     %.1f  (CPI %.2f, mCPI %.2f)\n\n"
    rep.Machine.Perf.length rep.Machine.Perf.total_cycles
    tot.Obs.Attrib.issue tot.Obs.Attrib.penalty tot.Obs.Attrib.stall
    rep.Machine.Perf.cpi rep.Machine.Perf.mcpi;
  Printf.bprintf b "%-10s %8s %10s %7s %7s %7s %7s %7s\n" "layer" "instrs"
    "cycles" "cyc/i" "mCPI" "i$miss" "(cold" "repl)";
  List.iter
    (fun l ->
      Printf.bprintf b "%-10s %8d %10.1f %7.2f %7.2f %7d %7d %7d\n" l.layer
        l.instrs (layer_cycles l)
        (if l.instrs = 0 then 0.0
         else layer_cycles l /. float_of_int l.instrs)
        (layer_mcpi l) l.imiss l.imiss_cold l.imiss_repl)
    t.layers;
  Printf.bprintf b "%-10s %8d %10.1f %7.2f %7.2f %7d %7d %7d\n" "TOTAL"
    tot.Obs.Attrib.instrs (Obs.Attrib.cycles tot)
    (if tot.Obs.Attrib.instrs = 0 then 0.0
     else Obs.Attrib.cycles tot /. float_of_int tot.Obs.Attrib.instrs)
    (Obs.Attrib.mcpi tot) tot.Obs.Attrib.imiss tot.Obs.Attrib.imiss_cold
    tot.Obs.Attrib.imiss_repl;
  Printf.bprintf b "\ntop %d functions by cycles:\n" top;
  Printf.bprintf b "  %-22s %-9s %8s %10s %7s %7s\n" "function" "layer"
    "instrs" "cycles" "mCPI" "i$miss";
  let by_cycles =
    List.stable_sort
      (fun (a : Obs.Attrib.row) b ->
        compare (Obs.Attrib.cycles b) (Obs.Attrib.cycles a))
      t.attrib.Obs.Attrib.rows
  in
  List.iteri
    (fun i (r : Obs.Attrib.row) ->
      if i < top then
        Printf.bprintf b "  %-22s %-9s %8d %10.1f %7.2f %7d\n"
          r.Obs.Attrib.func
          (layer_of ~stack:t.stack r.Obs.Attrib.func)
          r.Obs.Attrib.instrs (Obs.Attrib.cycles r) (Obs.Attrib.mcpi r)
          r.Obs.Attrib.imiss)
    by_cycles;
  let self = Obs.Attrib.self_imisses t.attrib in
  let cross = Obs.Attrib.cross_imisses t.attrib in
  let cold = t.attrib.Obs.Attrib.cold_imisses in
  Printf.bprintf b
    "\ni-cache conflicts: %d cold, %d self-interference, %d \
     cross-interference (of %d misses)\n"
    cold self cross tot.Obs.Attrib.imiss;
  if t.attrib.Obs.Attrib.conflicts <> [] then begin
    Printf.bprintf b "  %-22s %-22s %7s\n" "victim" "evictor" "misses";
    List.iter
      (fun (c : Obs.Attrib.conflict) ->
        Printf.bprintf b "  %-22s %-22s %7d\n" c.Obs.Attrib.victim
          c.Obs.Attrib.evictor c.Obs.Attrib.count)
      t.attrib.Obs.Attrib.conflicts
  end;
  Buffer.contents b

(* ----- JSON ---------------------------------------------------------------- *)

let add_f b x =
  if Float.is_integer x && Float.abs x < 1e15 then Printf.bprintf b "%.0f" x
  else Printf.bprintf b "%.6f" x

let add_row_fields b ~instrs ~issue ~penalty ~stall ~imiss ~imiss_cold
    ~imiss_repl ~dwb_miss =
  Printf.bprintf b "\"instrs\":%d,\"issue\":" instrs;
  add_f b issue;
  Buffer.add_string b ",\"penalty\":";
  add_f b penalty;
  Buffer.add_string b ",\"stall\":";
  add_f b stall;
  Buffer.add_string b ",\"cycles\":";
  add_f b (issue +. penalty +. stall);
  Buffer.add_string b ",\"mcpi\":";
  add_f b (if instrs = 0 then 0.0 else stall /. float_of_int instrs);
  Printf.bprintf b
    ",\"imiss\":%d,\"imiss_cold\":%d,\"imiss_repl\":%d,\"dwb_miss\":%d" imiss
    imiss_cold imiss_repl dwb_miss

let to_json t =
  let b = Buffer.create 8192 in
  let tot = t.attrib.Obs.Attrib.totals in
  let rep = report t in
  Printf.bprintf b
    "{\"schema_version\":%d,\"stack\":\"%s\",\"version\":\"%s\",\"topology\":\"%s\",\"seed\":%d,"
    Obs.Json.schema_version
    (Engine.stack_name t.stack)
    (Config.version_name t.version)
    (Protolat_netsim.Topology.to_string t.topology)
    t.seed;
  Printf.bprintf b "\"mode\":\"%s\","
    (match t.mode with `Steady -> "steady" | `Cold -> "cold");
  Buffer.add_string b "\"aggregate\":{";
  add_row_fields b ~instrs:rep.Machine.Perf.length ~issue:tot.Obs.Attrib.issue
    ~penalty:tot.Obs.Attrib.penalty ~stall:tot.Obs.Attrib.stall
    ~imiss:tot.Obs.Attrib.imiss ~imiss_cold:tot.Obs.Attrib.imiss_cold
    ~imiss_repl:tot.Obs.Attrib.imiss_repl ~dwb_miss:tot.Obs.Attrib.dwb_miss;
  Buffer.add_string b ",\"rtt_us_mean\":";
  add_f b (Stats.mean t.run.Engine.rtts);
  Buffer.add_string b "},\"layers\":[";
  List.iteri
    (fun i l ->
      if i > 0 then Buffer.add_char b ',';
      Printf.bprintf b "{\"layer\":\"%s\"," l.layer;
      add_row_fields b ~instrs:l.instrs ~issue:l.issue ~penalty:l.penalty
        ~stall:l.stall ~imiss:l.imiss ~imiss_cold:l.imiss_cold
        ~imiss_repl:l.imiss_repl ~dwb_miss:l.dwb_miss;
      Buffer.add_char b '}')
    t.layers;
  Buffer.add_string b "],\"functions\":[";
  List.iteri
    (fun i (r : Obs.Attrib.row) ->
      if i > 0 then Buffer.add_char b ',';
      Printf.bprintf b "{\"func\":\"%s\",\"layer\":\"%s\","
        r.Obs.Attrib.func
        (layer_of ~stack:t.stack r.Obs.Attrib.func);
      add_row_fields b ~instrs:r.Obs.Attrib.instrs ~issue:r.Obs.Attrib.issue
        ~penalty:r.Obs.Attrib.penalty ~stall:r.Obs.Attrib.stall
        ~imiss:r.Obs.Attrib.imiss ~imiss_cold:r.Obs.Attrib.imiss_cold
        ~imiss_repl:r.Obs.Attrib.imiss_repl ~dwb_miss:r.Obs.Attrib.dwb_miss;
      Buffer.add_char b '}')
    t.attrib.Obs.Attrib.rows;
  Buffer.add_string b "],\"conflicts\":[";
  List.iteri
    (fun i (c : Obs.Attrib.conflict) ->
      if i > 0 then Buffer.add_char b ',';
      Printf.bprintf b "{\"victim\":\"%s\",\"evictor\":\"%s\",\"count\":%d}"
        c.Obs.Attrib.victim c.Obs.Attrib.evictor c.Obs.Attrib.count)
    t.attrib.Obs.Attrib.conflicts;
  Printf.bprintf b
    "],\"imiss_summary\":{\"cold\":%d,\"self\":%d,\"cross\":%d,\"total\":%d},"
    t.attrib.Obs.Attrib.cold_imisses
    (Obs.Attrib.self_imisses t.attrib)
    (Obs.Attrib.cross_imisses t.attrib)
    tot.Obs.Attrib.imiss;
  Buffer.add_string b "\"metrics\":";
  Buffer.add_string b (Obs.Metrics.to_json t.run.Engine.metrics);
  Buffer.add_char b '}';
  Buffer.contents b
