module Util = Protolat_util
module Machine = Protolat_machine
module Layout = Protolat_layout
module Xk = Protolat_xkernel
module T = Protolat_tcpip
module R = Protolat_rpc
module Table = Util.Table
module Trace = Machine.Trace
module Perf = Machine.Perf
module Memsys = Machine.Memsys

type results = {
  tcp : (Config.version * Engine.sample_set) list;
  rpc : (Config.version * Engine.sample_set) list;
}

(* The full sweep is 6 configurations x 2 stacks x N seeded samples, every
   run independent: flatten them into one task list and drain it with a
   domain pool.  Seeds and result order match the sequential path exactly,
   so any [jobs] count produces bit-identical tables. *)
let full_run ?(samples_tcp = 10) ?(samples_rpc = 5) ?(rounds = 24)
    ?(jobs = 1) () =
  let specs =
    List.concat_map
      (fun (stack, samples) ->
        List.concat_map
          (fun v -> List.init samples (fun i -> (stack, v, i)))
          Paper.version_order)
      [ (Engine.Tcpip, samples_tcp); (Engine.Rpc, samples_rpc) ]
  in
  let results =
    Util.Dpool.run ~jobs
      (List.map
         (fun (stack, v, i) ->
           fun () ->
            Engine.run
              (Engine.Spec.make ~seed:(Engine.sample_seed i) ~rounds ~stack
                 ~config:(Config.make v) ()))
         specs)
  in
  let paired = List.combine specs results in
  let per_version stack =
    List.map
      (fun v ->
        let runs =
          List.filter_map
            (fun ((s, v', _), r) ->
              if s = stack && v' = v then Some r else None)
            paired
        in
        (v, Engine.collect runs))
      Paper.version_order
  in
  { tcp = per_version Engine.Tcpip; rpc = per_version Engine.Rpc }

let get results stack v =
  let l = match stack with Engine.Tcpip -> results.tcp | Engine.Rpc -> results.rpc in
  List.assoc v l

let f1 = Table.cell_f ~digits:1

let f2 = Table.cell_f ~digits:2

let i = string_of_int

(* ----- Table 1 ------------------------------------------------------------ *)

let steady_len config =
  (Engine.run (Engine.Spec.default ~stack:Engine.Tcpip ~config))
    .Engine.steady.Perf.length

let table1 () =
  let improved = T.Opts.improved in
  let toggles : (string * (T.Opts.t -> T.Opts.t)) list =
    [ ("Change bytes and shorts to words in TCP state",
       fun o -> { o with T.Opts.word_fields = false });
      ("More efficiently refresh message after processing",
       fun o -> { o with T.Opts.refresh_shortcircuit = false });
      ("Use USC in LANCE to avoid descriptor copying",
       fun o -> { o with T.Opts.usc_lance = false });
      ("Inlined hash-table cache test",
       fun o -> { o with T.Opts.map_cache_inline = false });
      ("Various inlining", fun o -> { o with T.Opts.misc_inlining = false });
      ("Avoid integer division", fun o -> { o with T.Opts.avoid_muldiv = false });
      ("Other minor changes", fun o -> { o with T.Opts.minor = false }) ]
  in
  let base = steady_len (Config.make ~opts:improved Config.Std) in
  let t =
    Table.create ~title:"Table 1: Dynamic Instruction Count Reductions"
      ~headers:[ "Technique"; "paper"; "measured" ]
  in
  let total = ref 0 in
  List.iter2
    (fun (name, flip) (_, paper_delta) ->
      let without = steady_len (Config.make ~opts:(flip improved) Config.Std) in
      let delta = without - base in
      total := !total + delta;
      Table.add_row t [ name; i paper_delta; i delta ])
    toggles Paper.table1;
  Table.add_separator t;
  let paper_total = List.fold_left (fun a (_, d) -> a + d) 0 Paper.table1 in
  Table.add_row t [ "Total"; i paper_total; i !total ];
  t

(* ----- Table 2 ------------------------------------------------------------ *)

let table2 () =
  let measure opts =
    let r =
      Engine.run
        (Engine.Spec.default ~stack:Engine.Tcpip
           ~config:(Config.make ~opts Config.Std))
    in
    ( Util.Stats.mean r.Engine.rtts,
      r.Engine.steady.Perf.length,
      int_of_float r.Engine.steady.Perf.total_cycles,
      r.Engine.steady.Perf.cpi )
  in
  let o_rtt, o_len, o_cyc, o_cpi = measure T.Opts.original in
  let i_rtt, i_len, i_cyc, i_cpi = measure T.Opts.improved in
  let po_rtt, po_len, po_cyc, po_cpi = Paper.table2_original in
  let pi_rtt, pi_len, pi_cyc, pi_cpi = Paper.table2_improved in
  let t =
    Table.create
      ~title:"Table 2: Original vs Improved x-kernel TCP/IP (STD layout)"
      ~headers:
        [ ""; "paper orig"; "ours orig"; "paper impr"; "ours impr" ]
  in
  Table.add_row t
    [ "Roundtrip latency [us]"; f1 po_rtt; f1 o_rtt; f1 pi_rtt; f1 i_rtt ];
  Table.add_row t
    [ "Instructions executed"; i po_len; i o_len; i pi_len; i i_len ];
  Table.add_row t
    [ "Processing time [cycles]"; i po_cyc; i o_cyc; i pi_cyc; i i_cyc ];
  Table.add_row t [ "CPI"; f2 po_cpi; f2 o_cpi; f2 pi_cpi; f2 i_cpi ];
  t

(* ----- Table 3 ------------------------------------------------------------ *)

(* classify each trace pc by the function that owns it *)
let func_of_pc image =
  let spans =
    Layout.Image.slots image
    |> List.map (fun (s : Layout.Image.slot) ->
           let last =
             if Array.length s.Layout.Image.pcs = 0 then s.Layout.Image.addr
             else s.Layout.Image.pcs.(Array.length s.Layout.Image.pcs - 1)
           in
           (s.Layout.Image.addr, last, s.Layout.Image.func))
    |> List.sort compare
  in
  let arr = Array.of_list spans in
  fun pc ->
    let rec search lo hi =
      if lo > hi then None
      else
        let mid = (lo + hi) / 2 in
        let a, b, f = arr.(mid) in
        if pc < a then search lo (mid - 1)
        else if pc > b then search (mid + 1) hi
        else Some f
    in
    search 0 (Array.length arr - 1)

(* instructions from the first event inside [from_] to the first event
   inside [to_] (the paper's "count instructions to complete a task") *)
let segment trace image ~from_ ~to_ =
  let fof = func_of_pc image in
  let n = Trace.length trace in
  let rec find_enter target j =
    if j >= n then None
    else if fof (Trace.get trace j).Trace.pc = Some target then Some j
    else find_enter target (j + 1)
  in
  match find_enter from_ 0 with
  | None -> None
  | Some s -> (
    match find_enter to_ s with
    | None -> None
    | Some e -> Some (e - s))

let in_function trace image ~func =
  let fof = func_of_pc image in
  let count = ref 0 in
  Trace.iter
    (fun e -> if fof e.Trace.pc = Some func then incr count)
    trace;
  !count

let table3 () =
  let r =
    Engine.run
      (Engine.Spec.default ~stack:Engine.Tcpip
         ~config:(Config.make ~opts:T.Opts.improved Config.Std))
  in
  let trace = r.Engine.trace and image = r.Engine.client_image in
  let seg a b =
    match segment trace image ~from_:a ~to_:b with
    | Some n -> i n
    | None -> "-"
  in
  let t =
    Table.create ~title:"Table 3: Comparison of TCP/IP Implementations"
      ~headers:
        [ "Instructions executed...";
          "80386 [CJRS89]";
          "DEC Unix v3.2c";
          "improved x-kernel (ours)" ]
  in
  Table.add_row t
    [ "...in ipintr / ipDemux"; "57"; "248";
      i (in_function trace image ~func:"ip_demux") ];
  Table.add_row t
    [ "...in tcp_input (after PCB lookup)"; "276"; "406";
      i (in_function trace image ~func:"tcp_input") ];
  Table.add_row t
    [ "...between IP input and TCP input"; "-"; "437";
      seg "ip_demux" "tcp_demux" ];
  Table.add_row t
    [ "...between TCP input and socket input"; "-"; "1013";
      seg "tcp_demux" "clientstream_demux" ];
  Table.add_separator t;
  Table.add_row t
    [ "total IP entry -> delivery"; "-"; "1450";
      seg "ip_demux" "clientstream_demux" ];
  t

(* per-function profile of one steady-state roundtrip *)
let profile ~stack ~version () =
  let r = Engine.run (Engine.Spec.default ~stack ~config:(Config.make version)) in
  let trace = r.Engine.trace and image = r.Engine.client_image in
  let fof = func_of_pc image in
  let counts = Hashtbl.create 32 in
  Trace.iter
    (fun e ->
      match fof e.Trace.pc with
      | None -> ()
      | Some f ->
        Hashtbl.replace counts f
          (1 + try Hashtbl.find counts f with Not_found -> 0))
    trace;
  let total = Trace.length trace in
  let rows =
    Hashtbl.fold (fun f n acc -> (f, n) :: acc) counts []
    |> List.sort (fun (_, a) (_, b) -> compare b a)
  in
  let t =
    Table.create
      ~title:
        (Printf.sprintf
           "Per-function profile: %s / %s (one roundtrip, %d instructions)"
           (Engine.stack_name stack)
           (Config.version_name version)
           total)
      ~headers:[ "function"; "instructions"; "share" ]
  in
  List.iter
    (fun (f, n) ->
      Table.add_row t
        [ f; i n; Printf.sprintf "%.1f%%" (100.0 *. float_of_int n /. float_of_int total) ])
    rows;
  t

(* dynamic instruction mix of one roundtrip *)
let instruction_mix ~stack ~version () =
  let r = Engine.run (Engine.Spec.default ~stack ~config:(Config.make version)) in
  let total = Trace.length r.Engine.trace in
  let t =
    Table.create
      ~title:
        (Printf.sprintf "Instruction mix: %s / %s" (Engine.stack_name stack)
           (Config.version_name version))
      ~headers:[ "class"; "count"; "share" ]
  in
  List.iter
    (fun (cls, n) ->
      Table.add_row t
        [ Machine.Instr.to_string cls; i n;
          Printf.sprintf "%.1f%%" (100.0 *. float_of_int n /. float_of_int total) ])
    (Trace.class_counts r.Engine.trace);
  t

(* ----- Tables 4 and 5 ------------------------------------------------------ *)

let version_rows results f =
  List.iter
    (fun v ->
      let tcp = get results Engine.Tcpip v and rpc = get results Engine.Rpc v in
      f v tcp rpc)
    Paper.version_order

let idx v =
  let rec go k = function
    | [] -> invalid_arg "version index"
    | x :: rest -> if x = v then k else go (k + 1) rest
  in
  go 0 Paper.version_order

let table4 results =
  let t =
    Table.create ~title:"Table 4: End-to-end Roundtrip Latency [us]"
      ~headers:
        [ "Version"; "TCP/IP paper"; "TCP/IP ours"; "d%"; "RPC paper";
          "RPC ours"; "d%" ]
  in
  let all_tcp = (get results Engine.Tcpip Config.All).Engine.rtt.Util.Stats.mean in
  let all_rpc = (get results Engine.Rpc Config.All).Engine.rtt.Util.Stats.mean in
  version_rows results (fun v tcp rpc ->
      let pt, pts = Paper.table4_tcp.(idx v) in
      let pr, prs = Paper.table4_rpc.(idx v) in
      Table.add_row t
        [ Config.version_name v;
          Table.cell_pm pt pts;
          Table.cell_pm tcp.Engine.rtt.Util.Stats.mean
            tcp.Engine.rtt.Util.Stats.stddev;
          Table.cell_pct
            (Util.Stats.percent_slowdown tcp.Engine.rtt.Util.Stats.mean all_tcp);
          Table.cell_pm pr prs;
          Table.cell_pm rpc.Engine.rtt.Util.Stats.mean
            rpc.Engine.rtt.Util.Stats.stddev;
          Table.cell_pct
            (Util.Stats.percent_slowdown rpc.Engine.rtt.Util.Stats.mean all_rpc)
        ]);
  t

(* our measured controller constant: 2 x (controller overhead + wire +
   receive interrupt delay) *)
let our_adjust_us = 2.0 *. (47.0 +. 57.9 +. 2.0 +. 0.3)

let table5 results =
  let t =
    Table.create
      ~title:
        "Table 5: Roundtrip Latency Adjusted for Network Controller [us]"
      ~headers:
        [ "Version"; "TCP/IP paper"; "TCP/IP ours"; "d%"; "RPC paper";
          "RPC ours"; "d%" ]
  in
  let adj x = x -. our_adjust_us in
  let all_tcp =
    adj (get results Engine.Tcpip Config.All).Engine.rtt.Util.Stats.mean
  in
  let all_rpc =
    adj (get results Engine.Rpc Config.All).Engine.rtt.Util.Stats.mean
  in
  version_rows results (fun v tcp rpc ->
      let pt, _ = Paper.table4_tcp.(idx v) in
      let pr, _ = Paper.table4_rpc.(idx v) in
      Table.add_row t
        [ Config.version_name v;
          f1 (pt -. Paper.adjust_us);
          f1 (adj tcp.Engine.rtt.Util.Stats.mean);
          Table.cell_pct
            (Util.Stats.percent_slowdown (adj tcp.Engine.rtt.Util.Stats.mean)
               all_tcp);
          f1 (pr -. Paper.adjust_us);
          f1 (adj rpc.Engine.rtt.Util.Stats.mean);
          Table.cell_pct
            (Util.Stats.percent_slowdown (adj rpc.Engine.rtt.Util.Stats.mean)
               all_rpc) ]);
  t

(* ----- Table 6 ------------------------------------------------------------ *)

let table6 results =
  let t =
    Table.create
      ~title:
        "Table 6: Cache Performance (cold replay; miss/acc/repl; paper -> ours)"
      ~headers:[ "Stack"; "Version"; "i-cache"; "d-cache/wb"; "b-cache" ]
  in
  let render (pm, pa, pr) (row : Memsys.cache_row) =
    Printf.sprintf "%d/%d/%d -> %d/%d/%d" pm pa pr row.Memsys.miss
      row.Memsys.acc row.Memsys.repl
  in
  let stack_rows name stack paper =
    List.iter
      (fun v ->
        let s = (get results stack v).Engine.result.Engine.cold.Perf.stats in
        let p = paper.(idx v) in
        Table.add_row t
          [ name; Config.version_name v;
            render p.(0) s.Memsys.icache;
            render p.(1) s.Memsys.dwb;
            render p.(2) s.Memsys.bcache ])
      Paper.version_order;
    Table.add_separator t
  in
  stack_rows "TCP/IP" Engine.Tcpip Paper.table6_tcp;
  stack_rows "RPC" Engine.Rpc Paper.table6_rpc;
  t

(* ----- Table 7 ------------------------------------------------------------ *)

let table7 results =
  let t =
    Table.create
      ~title:"Table 7: Processing Time and CPI Decomposition (steady state)"
      ~headers:
        [ "Stack"; "Version"; "Tp [us]"; "length (paper)"; "mCPI (paper)";
          "iCPI (paper)" ]
  in
  let stack_rows name stack paper =
    List.iter
      (fun v ->
        let r = (get results stack v).Engine.result.Engine.steady in
        let plen, pm, pi = paper.(idx v) in
        Table.add_row t
          [ name; Config.version_name v;
            f1 r.Perf.time_us;
            Printf.sprintf "%d (%d)" r.Perf.length plen;
            Printf.sprintf "%.2f (%.2f)" r.Perf.mcpi pm;
            Printf.sprintf "%.2f (%.2f)" r.Perf.icpi pi ])
      Paper.version_order;
    Table.add_separator t
  in
  stack_rows "TCP/IP" Engine.Tcpip Paper.table7_tcp;
  stack_rows "RPC" Engine.Rpc Paper.table7_rpc;
  t

(* ----- Table 8 ------------------------------------------------------------ *)

let transitions =
  [ (Config.Bad, Config.Clo, "BAD->CLO");
    (Config.Std, Config.Out, "STD->OUT");
    (Config.Out, Config.Clo, "OUT->CLO");
    (Config.Out, Config.Pin, "OUT->PIN");
    (Config.Pin, Config.All, "PIN->ALL") ]

let table8 results =
  let t =
    Table.create
      ~title:
        "Table 8: Latency Improvement Comparison (client-side deltas)"
      ~headers:
        [ "Change"; "Stack"; "I [%]"; "dTe [us]"; "dTp [us]"; "dNb"; "dNm" ]
  in
  let row stack name (a, b, label) =
    let ra = (get results stack a).Engine.result in
    let rb = (get results stack b).Engine.result in
    let sa = ra.Engine.steady.Perf.stats and sb = rb.Engine.steady.Perf.stats in
    let b_acc r = r.Memsys.bcache.Memsys.acc in
    let dwb_miss r = r.Memsys.dwb.Memsys.miss in
    let b_i r = b_acc r - dwb_miss r in
    let d_nb = b_acc sa - b_acc sb in
    let d_nm = sa.Memsys.bcache.Memsys.miss - sb.Memsys.bcache.Memsys.miss in
    let ipct =
      if d_nb = 0 then 0.0
      else 100.0 *. float_of_int (b_i sa - b_i sb) /. float_of_int d_nb
    in
    let rtt r = (get results stack r).Engine.rtt.Util.Stats.mean in
    (* the paper reports the client-side share: half the end-to-end delta
       for TCP/IP (both sides change), the full delta for RPC (server
       fixed) *)
    let share = match stack with Engine.Tcpip -> 0.5 | Engine.Rpc -> 1.0 in
    let d_te = (rtt a -. rtt b) *. share in
    let d_tp =
      ra.Engine.steady.Perf.time_us -. rb.Engine.steady.Perf.time_us
    in
    Table.add_row t
      [ label; name; f1 ipct; f1 d_te; f1 d_tp; i d_nb; i d_nm ]
  in
  List.iter (row Engine.Tcpip "TCP/IP") transitions;
  Table.add_separator t;
  List.iter (row Engine.Rpc "RPC") transitions;
  t

(* ----- Table 9 ------------------------------------------------------------ *)

let table9 results =
  let t =
    Table.create ~title:"Table 9: Outlining Effectiveness"
      ~headers:
        [ "Stack"; "unused before"; "size before"; "unused after";
          "size after"; "outlined share" ]
  in
  let row name stack (pu0, ps0, pu1, ps1) =
    let std = (get results stack Config.Std).Engine.result in
    let out = (get results stack Config.Out).Engine.result in
    let unused r =
      100.0
      *. Layout.Layout_stats.unused_fraction r.Engine.trace ~block_bytes:32
    in
    let total, hot = std.Engine.static_path in
    Table.add_row t
      [ name;
        Printf.sprintf "%.0f%% (%d%%)" (unused std) pu0;
        Printf.sprintf "%d (%d)" total ps0;
        Printf.sprintf "%.0f%% (%d%%)" (unused out) pu1;
        Printf.sprintf "%d (%d)" hot ps1;
        Printf.sprintf "%d%% (paper 34/28%%)" (100 * (total - hot) / total) ]
  in
  row "TCP/IP" Engine.Tcpip Paper.table9_tcp;
  row "RPC" Engine.Rpc Paper.table9_rpc;
  t

(* ----- Figures ------------------------------------------------------------ *)

let figure1 () =
  Xk.Protocol.render_pair (T.Stack.figure1 ()) (R.Rstack.figure1 ())

let figure2 () =
  let show version title =
    let r =
      Engine.run
        (Engine.Spec.default ~stack:Engine.Tcpip ~config:(Config.make version))
    in
    title ^ "\n"
    ^ Layout.Layout_stats.footprint r.Engine.client_image ~trace:r.Engine.trace
        ~block_bytes:32
  in
  String.concat "\n"
    [ show Config.Std
        "--- STD: no outlining (cold code interleaved, '#'=fetched '.'=never) ---";
      show Config.Out "--- OUT: outlined (cold 'o' moved behind each function) ---";
      show Config.Clo
        "--- CLO: cloned, bipartite layout (clones dense; cold in shared region) ---"
    ]

(* ----- extra experiments --------------------------------------------------- *)

let map_traversal () =
  let t =
    Table.create
      ~title:
        "Hash-table traversal: non-empty-bucket list vs full scan (S2.2.1)"
      ~headers:
        [ "occupancy"; "elements"; "buckets scanned (list)";
          "buckets scanned (full)"; "speedup" ]
  in
  let buckets = 1024 in
  List.iter
    (fun pct ->
      let m = Xk.Map.create ~buckets () in
      let n = buckets * pct / 100 in
      for k = 0 to n - 1 do
        Xk.Map.bind m (Printf.sprintf "key%06d" k) k
      done;
      Xk.Map.reset_counters m;
      Xk.Map.traverse m (fun _ _ -> ());
      let list_scan = (Xk.Map.counters m).Xk.Map.buckets_scanned in
      Xk.Map.reset_counters m;
      Xk.Map.traverse_all_buckets m (fun _ _ -> ());
      let full_scan = (Xk.Map.counters m).Xk.Map.buckets_scanned in
      Table.add_row t
        [ Printf.sprintf "%d%%" pct; i n; i list_scan; i full_scan;
          Printf.sprintf "%.1fx"
            (float_of_int full_scan /. float_of_int (max 1 list_scan)) ])
    [ 1; 5; 10; 25; 50; 100 ];
  t

let micro_positioning () =
  let t =
    Table.create
      ~title:
        "Micro-positioning vs bipartite layout (S3.2, TCP/IP, cloned+outlined)"
      ~headers:
        [ "Layout"; "RTT [us]"; "i-repl (steady)"; "i-miss (steady)";
          "gap bytes" ]
  in
  let run layout label =
    let config = Config.make Config.Clo in
    let r =
      Engine.run (Engine.Spec.make ~layout ~stack:Engine.Tcpip ~config ())
    in
    let img = Engine.layout_for config Engine.Tcpip ~layout () in
    let regions = Layout.Image.regions img in
    let extents =
      List.map (fun (_, a, b) -> (a, b)) regions |> List.sort compare
    in
    let gaps =
      let rec go acc = function
        | (_, e) :: ((s, _) :: _ as rest) -> go (acc + max 0 (s - e)) rest
        | _ -> acc
      in
      go 0 extents
    in
    let s = r.Engine.steady.Perf.stats in
    Table.add_row t
      [ label;
        f1 (Util.Stats.mean r.Engine.rtts);
        i s.Memsys.icache.Memsys.repl;
        i s.Memsys.icache.Memsys.miss;
        i gaps ]
  in
  run Config.Bipartite "bipartite";
  run Config.Micro "micro-positioning";
  t

(* ----- incremental layout sweep ------------------------------------------- *)

let layout_candidates =
  [ Config.Bipartite; Config.Micro; Config.Linear; Config.Link_order;
    Config.Pessimal ]

(* One measurement run executes the same protocol actions under every
   candidate placement of the same units, so a layout sweep does not need a
   full protocol simulation per candidate: the base run's steady-state
   trace is retargeted to each placement by rewriting instruction addresses
   ({!Layout.Image.pc_map} + {!Trace.map_pcs}), the one-time basic-block
   segmentation is re-bound to the new i-cache lines
   ({!Machine.Blockcache.rebind}), and only the i-side mapping is
   re-evaluated ({!Perf.steady_bc} / {!Perf.cold_bc}).  [~incremental:false]
   runs the full simulation per candidate instead — the reports are
   bit-identical, several times slower. *)
let layout_sweep_base ?(config = Config.make Config.Clo)
    ?(stack = Engine.Tcpip) () =
  let base_layout = Config.layout_of config.Config.version in
  Engine.run (Engine.Spec.make ~stack ~config ~layout:base_layout ())

let layout_sweep ?(config = Config.make Config.Clo) ?(stack = Engine.Tcpip)
    ?(layouts = layout_candidates) ?base ~incremental () =
  if not incremental then
    List.map
      (fun layout ->
        let r = Engine.run (Engine.Spec.make ~stack ~config ~layout ()) in
        (layout, r.Engine.cold, r.Engine.steady))
      layouts
  else begin
    let base_layout = Config.layout_of config.Config.version in
    let spec = Engine.Spec.make ~stack ~config ~layout:base_layout () in
    let base =
      match base with Some r -> r | None -> Engine.run spec
    in
    let params = spec.Engine.Spec.params in
    let bc = Machine.Blockcache.segment params base.Engine.trace in
    List.map
      (fun layout ->
        if layout = base_layout then
          (layout, base.Engine.cold, base.Engine.steady)
        else begin
          let img = Engine.layout_for config stack ~layout () in
          let trace' =
            Trace.map_pcs
              (Layout.Image.pc_map base.Engine.client_image img)
              base.Engine.trace
          in
          let bc' = Machine.Blockcache.rebind bc trace' in
          (layout, Perf.cold_bc params bc', Perf.steady_bc params bc')
        end)
      layouts
  end

let layout_sweep_table ?(incremental = true) () =
  let rows = layout_sweep ~incremental () in
  let t =
    Table.create
      ~title:
        (Printf.sprintf
           "Layout sweep (TCP/IP, cloned+outlined; %s: one run, per-layout \
            pc rewrite + block-cache replay)"
           (if incremental then "incremental" else "full simulation"))
      ~headers:
        [ "Layout"; "steady [us]"; "steady mCPI"; "i-miss"; "i-repl";
          "cold [us]" ]
  in
  List.iter
    (fun (layout, cold, steady) ->
      let s = steady.Perf.stats in
      Table.add_row t
        [ Config.layout_name layout;
          f1 steady.Perf.time_us;
          Table.cell_f ~digits:2 steady.Perf.mcpi;
          i s.Memsys.icache.Memsys.miss;
          i s.Memsys.icache.Memsys.repl;
          f1 cold.Perf.time_us ])
    rows;
  t

let layout_search ?(budget = 240) ?(seeds = 1) ?(geometries = [ 8 ])
    ?(jobs = 1) () =
  Layoutsearch.table (Layoutsearch.run ~budget ~seeds ~geometries ~jobs ())

let throughput () =
  let t =
    Table.create
      ~title:
        "Throughput and CPU utilization (S4.1/S2.2.5): 64KB bulk transfer"
      ~headers:
        [ "Version"; "Mb/s"; "client CPU %"; "server CPU %"; "segments" ]
  in
  List.iter
    (fun v ->
      let r = Engine.throughput ~config:(Config.make v) () in
      Table.add_row t
        [ Config.version_name v;
          f2 r.Engine.mbits_per_s;
          f1 r.Engine.client_cpu_pct;
          f1 r.Engine.server_cpu_pct;
          i r.Engine.segments ])
    Paper.version_order;
  Table.add_separator t;
  List.iter
    (fun (name, opts) ->
      let r = Engine.throughput ~config:(Config.make ~opts Config.Std) () in
      Table.add_row t
        [ name; f2 r.Engine.mbits_per_s; f1 r.Engine.client_cpu_pct;
          f1 r.Engine.server_cpu_pct; i r.Engine.segments ])
    [ ("STD original opts", T.Opts.original);
      ("STD improved opts", T.Opts.improved) ];
  t

let dec_unix_mcpi () =
  let t =
    Table.create ~title:"S5: production-style stack vs optimal configuration"
      ~headers:[ "System"; "mCPI paper"; "mCPI ours" ]
  in
  let original =
    Engine.run
      (Engine.Spec.default ~stack:Engine.Tcpip
         ~config:
           (Config.make
              ~opts:{ T.Opts.original with T.Opts.header_prediction = true }
              Config.Std))
  in
  let best =
    Engine.run
      (Engine.Spec.default ~stack:Engine.Tcpip ~config:(Config.make Config.All))
  in
  Table.add_row t
    [ "DEC Unix style (original opts, uncontrolled layout)";
      f2 Paper.dec_unix_mcpi; f2 original.Engine.steady.Perf.mcpi ];
  Table.add_row t
    [ "optimally configured (ALL)"; f2 Paper.optimal_mcpi;
      f2 best.Engine.steady.Perf.mcpi ];
  t

let fault_injection () =
  let t =
    Table.create
      ~title:
        "Fault injection: latency and cold-path coverage under seeded faults"
      ~headers:
        [ "Stack"; "Schedule"; "RTT [us]"; "Rexmt"; "Cold blocks hit" ]
  in
  let tracked = Soak.tracked_cold_blocks in
  let schedule name =
    (List.find (fun s -> s.Soak.sname = name) Soak.schedules).Soak.sspec
  in
  let row stack sname =
    let cover = Soak.Cover.create () in
    let r =
      Engine.run
        (Engine.Spec.make ~seed:42 ~fault:(schedule sname)
           ~extra_meter:(Soak.Cover.meter cover) ~stack
           ~config:(Config.make Config.All) ())
    in
    let hit =
      List.length
        (List.filter
           (fun (func, block) -> Soak.Cover.triggered cover ~func ~block > 0)
           tracked)
    in
    Table.add_row t
      [ Engine.stack_name stack;
        sname;
        f1 (Util.Stats.mean r.Engine.rtts);
        i r.Engine.retransmissions;
        Printf.sprintf "%d/%d" hit (List.length tracked) ]
  in
  List.iter (row Engine.Tcpip)
    [ "clean"; "loss"; "burst"; "corrupt"; "dup"; "reorder" ];
  Table.add_separator t;
  List.iter (row Engine.Rpc) [ "clean"; "loss" ];
  t

(* degradation curve under host-lifecycle chaos: goodput and latency of
   the at-most-once workload as the fault-incident count per 200 ms
   horizon grows.  Cells come from [Chaos.run_matrix], so the table is
   bit-identical at any [jobs]. *)
let chaos_degradation ?(intensities = [ 0; 1; 2; 4; 8 ]) ?(seeds = 2)
    ?(jobs = 1) () =
  let cells = Chaos.run_matrix ~intensities ~seeds ~jobs ~seed:42 () in
  let t =
    Table.create
      ~title:
        "Chaos degradation: at-most-once TCP workload vs host-fault \
         intensity (mean over seeds)"
      ~headers:
        [ "Intensity"; "Done"; "Reconn"; "Crashes"; "Partitions";
          "Goodput [req/s]"; "p50 [us]"; "p99 [us]"; "Violations" ]
  in
  List.iter
    (fun intensity ->
      let cs =
        List.filter (fun (c : Chaos.cell) -> c.Chaos.intensity = intensity)
          cells
      in
      let n = float_of_int (List.length cs) in
      let avg f =
        List.fold_left
          (fun acc (c : Chaos.cell) -> acc +. f c.Chaos.c_outcome)
          0.0 cs
        /. n
      in
      let sum f =
        List.fold_left
          (fun acc (c : Chaos.cell) -> acc + f c.Chaos.c_outcome)
          0 cs
      in
      let viols =
        List.concat_map
          (fun (c : Chaos.cell) -> Chaos.failure_names c.Chaos.c_outcome)
          cs
      in
      Table.add_row t
        [ i intensity;
          Printf.sprintf "%d/%d"
            (sum (fun o -> o.Chaos.completed))
            (sum (fun o -> o.Chaos.total));
          i (sum (fun o -> o.Chaos.reconnects));
          i (sum (fun o -> o.Chaos.o_crashes));
          i (sum (fun o -> o.Chaos.o_partitions));
          f1 (avg (fun o -> o.Chaos.goodput_rps));
          f1 (avg (fun o -> o.Chaos.lat.Util.Stats.p50));
          f1 (avg (fun o -> o.Chaos.lat.Util.Stats.p99));
          (match List.sort_uniq compare viols with
          | [] -> "none"
          | vs -> String.concat "," vs) ])
    intensities;
  t

let mflow_scaling ?(flow_counts = [ 1; 8; 64; 256 ]) ?(seeds = 4) ?(jobs = 1)
    () =
  let spec =
    Engine.Spec.default ~stack:Engine.Tcpip ~config:(Config.make Config.All)
  in
  let r = Mflow.sweep ~flow_counts ~seeds ~jobs spec in
  let t =
    Table.create
      ~title:
        "Multi-flow scaling: latency and demux-map behaviour (TCP, ALL)"
      ~headers:
        [ "Flows"; "p50 [us]"; "p90 [us]"; "p99 [us]"; "p99.9 [us]";
          "max [us]"; "Hit rate"; "Cmp/res"; "Timer HW"; "Conns" ]
  in
  List.iter
    (fun flows ->
      let cells =
        List.filter (fun (c : Mflow.cell) -> c.Mflow.flows = flows)
          r.Mflow.cells
      in
      let n = float_of_int (List.length cells) in
      let avg f = List.fold_left (fun acc c -> acc +. f c) 0.0 cells /. n in
      Table.add_row t
        [ i flows;
          f1 (avg (fun c -> c.Mflow.lat.Util.Stats.Hist.p50));
          f1 (avg (fun c -> c.Mflow.lat.Util.Stats.Hist.p90));
          f1 (avg (fun c -> c.Mflow.lat.Util.Stats.Hist.p99));
          f1 (avg (fun c -> c.Mflow.lat.Util.Stats.Hist.p999));
          f1 (avg (fun c -> c.Mflow.lat.Util.Stats.Hist.max));
          f2 (avg (fun c -> Mflow.hit_rate c.Mflow.server_map));
          f2 (avg (fun c -> Mflow.compares_per_resolve c.Mflow.server_map));
          i
            (List.fold_left
               (fun acc (c : Mflow.cell) -> max acc c.Mflow.timer_high_water)
               0 cells);
          i
            (List.fold_left
               (fun acc (c : Mflow.cell) -> acc + c.Mflow.conns)
               0 cells
            / List.length cells) ])
    r.Mflow.flow_counts;
  t

let incast_latency ?(fan_ins = [ 2; 4; 8; 16; 32; 64 ]) ?(seeds = 1)
    ?(jobs = 1) () =
  let r = Incast.sweep ~fan_ins ~seeds ~jobs ~seed:42 () in
  let t =
    Table.create
      ~title:
        "Incast: completion latency vs fan-in over the switched star \
         fabric (TCP, mean over seeds)"
      ~headers:
        [ "Fan-in"; "Done"; "p50 [us]"; "p90 [us]"; "p99 [us]";
          "p99.9 [us]"; "max [us]"; "Rexmt"; "Q drops"; "Q peak" ]
  in
  List.iter
    (fun fan_in ->
      let cells =
        List.filter (fun (c : Incast.cell) -> c.Incast.fan_in = fan_in)
          r.Incast.cells
      in
      let n = float_of_int (List.length cells) in
      let avg f = List.fold_left (fun acc c -> acc +. f c) 0.0 cells /. n in
      let sum f =
        List.fold_left (fun acc (c : Incast.cell) -> acc + f c) 0 cells
      in
      Table.add_row t
        [ i fan_in;
          Printf.sprintf "%d/%d"
            (sum (fun c -> c.Incast.completed))
            (sum (fun c -> c.Incast.total));
          f1 (avg (fun c -> c.Incast.lat.Util.Stats.Hist.p50));
          f1 (avg (fun c -> c.Incast.lat.Util.Stats.Hist.p90));
          f1 (avg (fun c -> c.Incast.lat.Util.Stats.Hist.p99));
          f1 (avg (fun c -> c.Incast.lat.Util.Stats.Hist.p999));
          f1 (avg (fun c -> c.Incast.lat.Util.Stats.Hist.max));
          i (sum (fun c -> c.Incast.retransmits));
          i (sum (fun c -> c.Incast.queue_drops));
          i
            (List.fold_left
               (fun acc (c : Incast.cell) -> max acc c.Incast.queue_peak)
               0 cells) ])
    r.Incast.fan_ins;
  t
