(** Host-lifecycle chaos engine: deterministic, seeded fault schedules
    layered above {!Protolat_netsim.Fault}, an at-most-once RPC workload
    supervised by the {!Invariant} watchdog, and a delta-debugging
    shrinker that reduces a failing schedule to a locally-minimal,
    replayable repro.

    Where [Fault] perturbs individual frames, a chaos schedule perturbs
    {e hosts}: it crashes and restarts them (all protocol state — PCBs,
    timers, reassembly buffers, driver queues — dies; the application's
    durable state survives), partitions the link for a window, skews a
    host's timer clock, and injects cache-pressure stalls at the NIC.
    A schedule is an explicit [(time, event) list], so every run is a
    pure function of [(case, schedule)]: replayable bit-identically at
    any job count, and shrinkable by removing or coarsening events. *)

module Ns = Protolat_netsim
module T = Protolat_tcpip
module Obs = Protolat_obs
module Util = Protolat_util

(** {1 Schedules} *)

type host =
  | Client
  | Server

type event =
  | Crash of host  (** power off: protocol state lost, frames dropped *)
  | Restart of host  (** power on; the workload's restart hook runs *)
  | Partition_on  (** link drops everything (nests; see {!inject}) *)
  | Partition_off
  | Skew of host * float  (** timer-clock scale factor (1.0 = nominal) *)
  | Skew_reset of host
  | Cache_flush of host  (** NIC busy-stall modelling cache pressure *)

type item = {
  at_us : float;
  ev : event;
}

type schedule = item list

val host_string : host -> string

val event_string : event -> string

val item_string : item -> string

val normalize : schedule -> schedule
(** Stable-sort by time and bump ties to strictly increasing whole
    microseconds, so injection order — and therefore the whole run — is
    independent of list construction order.  [run_case], {!inject} and
    the JSON exporter all normalize, so a schedule and its export replay
    identically. *)

val last_event_us : schedule -> float

val gen : seed:int -> intensity:int -> horizon_us:float -> schedule
(** A deterministic schedule of [intensity] fault incidents (weighted
    mix of crash/restart pairs, partition windows, skew windows and
    cache flushes), all recovering before [horizon_us]. *)

(** {1 Injection} *)

(** Live injection state, exposed so workloads can consult it. *)
type status

val is_down : status -> host -> bool

val crashes : status -> int

val restarts : status -> int

val partitions : status -> int

val skews : status -> int

val flushes : status -> int

val inject :
  T.Stack.net ->
  ?flush_us:float ->
  on_restart:(host -> unit) ->
  schedule ->
  status
(** Arm every event of the (normalized) schedule on the net's simulator
    (host 0 is [Client], host 1 [Server]).  Crashes power the LANCE down
    and wipe the host's volatile protocol state ({!T.Tcp.abort_all},
    {!T.Ip.reset}, {!Ns.Netdev.reset}, [Event.cancel_all]); restarts
    power it back up and call [on_restart] (a server re-installs its
    listeners there).  Partition windows nest: the fabric is open again
    only when every [Partition_on] has been matched, and unmatched
    [Partition_off]s (a shrinker artifact) are ignored.  On the pair
    fabric a partition is the historic whole-link filter; on switched
    fabrics every switch port black-holes ({!Ns.Fabric.partition_all}),
    so drops land in the switch's partition counter.  Crash/restart and
    flush events are idempotent against unpaired duplicates. *)

(** {1 The at-most-once workload} *)

type bug =
  | No_bug
  | Dedup_off
      (** disable the server's duplicate-request cache: a crash-induced
          client retry then re-executes the request, violating
          at-most-once — the canned regression the shrinker demos on *)

val bug_string : bug -> string

val bug_of_string : string -> bug option

type case = {
  seed : int;
  flows : int;  (** concurrent client flows, 1..64 *)
  requests : int;  (** requests per flow *)
  horizon_us : float;  (** fault activity is confined to [0, horizon) *)
  bug : bug;
  topology : Ns.Topology.t;
      (** 2-host wiring; [pair] (the default) reproduces pre-fabric runs
          bit for bit, [star]/[line] with 2 hosts route through the
          switch and partition at its ports *)
  sched : schedule;
}

val case : ?flows:int -> ?requests:int -> ?horizon_us:float -> ?bug:bug ->
  ?topology:Ns.Topology.t -> seed:int -> schedule -> case
(** Defaults: 4 flows, 24 requests, 200 ms horizon, [No_bug], pair
    topology. *)

type outcome = {
  completed : int;  (** verified request/response exchanges *)
  total : int;  (** [flows * requests] *)
  reconnects : int;  (** client reconnect attempts after the first *)
  duplicate_execs : int;  (** server-side re-executions (bug indicator) *)
  o_crashes : int;
  o_restarts : int;
  o_partitions : int;
  o_flushes : int;
  end_us : float;  (** simulated time when traffic finished (or gave up) *)
  goodput_rps : float;  (** completed / end_us *)
  lat : Util.Stats.quantiles;  (** per-exchange latency incl. retries *)
  violations : Invariant.violation list;
}

val run_case : case -> outcome
(** Run the workload under the case's schedule: [flows] clients issue
    sequentially-numbered requests over TCP to an at-most-once server
    whose reply cache survives crashes; clients reconnect (fresh port)
    and resend on loss.  The watchdog checks at-most-once execution,
    reply payload integrity and metrics conservation continuously, and
    flow/timer liveness at quiesce.  Deterministic in [case]. *)

val ok : outcome -> bool

val failure_names : outcome -> string list

(** {1 Matrix runs (soak / degradation)} *)

type cell = {
  intensity : int;
  c_case : case;
  c_outcome : outcome;
}

val run_matrix :
  ?flows:int ->
  ?requests:int ->
  ?horizon_us:float ->
  ?bug:bug ->
  ?topology:Ns.Topology.t ->
  ?intensities:int list ->
  ?seeds:int ->
  ?jobs:int ->
  seed:int ->
  unit ->
  cell list
(** Cells ordered intensity-major, seed-minor; fanned over
    {!Util.Dpool} and bit-identical at any [jobs]. *)

val digest : cell list -> string
(** MD5 over the canonical cell rendering. *)

val passed : cell list -> bool

val render : cell list -> string

val matrix_to_json : cell list -> string

(** {1 Shrinking and repro files} *)

type shrink_result = {
  target : string;  (** the violation the shrinker preserved *)
  minimal : schedule;
  runs : int;  (** workload executions the search spent *)
}

val shrink : case -> shrink_result option
(** Delta-debug the case's schedule: greedy chunk removal (ddmin), then
    per-event removal, then time-coarsening onto 50 ms/10 ms/1 ms grids —
    keeping every candidate whose run still exhibits the original run's
    primary violation.  [None] if the case does not fail at all. *)

val case_to_json : ?expect:string list -> case -> string
(** Versioned repro file: the case plus the violation names a replay is
    expected to produce ([expect = []] documents a fixed, clean run). *)

val case_of_json : string -> (case * string list, string) result
(** Parse a repro file; the second component is the [expect] list. *)

val replay : case -> expect:string list -> outcome * bool
(** Run the case and compare its violation names against [expect]
    (order-insensitively).  The bool is the match verdict. *)
